"""The selectors front end: framing, backpressure, guards, write path.

`test_store_server.py` already runs the whole endpoint contract against both
front ends; this module covers what only shows up at the transport level —
keep-alive framing across bodied requests and 4xx-with-unread-body uploads,
the replace-vs-read metadata race the atomic read path fixes, per-connection
read timeouts, the max-connections guard — plus the client-side bugfixes
(URL base path, non-finite range, 0-d sources).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import api
from repro.store import ArchiveStore, IngestManager, make_server
from repro.store.client import PushError, delete_key, push_field
from repro.store.server import Request, StoreApp

CODEC = "szinterp"
SIDE, TILE = 32, 16


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(23)
    return rng.standard_normal((SIDE, SIDE, SIDE)).cumsum(axis=0)


@pytest.fixture(scope="module")
def grid_blob(field):
    return api.compress_chunked(field, codec=CODEC, bound=1e-3,
                                chunk_shape=(TILE, TILE, TILE))


@pytest.fixture()
def grid_path(grid_blob, tmp_path):
    path = tmp_path / "grid.rpra"
    path.write_bytes(grid_blob)
    return str(path)


def _start(store, **kwargs):
    srv = make_server(store, server=kwargs.pop("server", "selectors"),
                      **kwargs)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return srv, thread


@pytest.fixture(params=["threaded", "selectors"])
def server(grid_path, request):
    store = ArchiveStore()
    store.add("field", grid_path)
    srv, thread = _start(store, server=request.param)
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        store.close()
        thread.join(timeout=10)


def _read_response(f):
    """Parse one HTTP response off a buffered socket file."""
    status_line = f.readline()
    assert status_line, "connection closed before a response arrived"
    parts = status_line.split(None, 2)
    status = int(parts[1])
    headers = {}
    while True:
        raw = f.readline().strip()
        if not raw:
            break
        name, _, value = raw.partition(b":")
        headers[name.decode().lower()] = value.decode().strip()
    length = int(headers.get("content-length", "0"))
    body = f.read(length) if length else b""
    return status, headers, body


# ---------------------------------------------------------------------------
# Keep-alive framing (both front ends)
# ---------------------------------------------------------------------------

class TestKeepAliveFraming:
    def test_pipelined_gets_one_connection(self, server):
        with socket.create_connection(server.server_address[:2],
                                      timeout=30) as s:
            f = s.makefile("rb")
            n = 4
            s.sendall(b"GET /v1/field/info HTTP/1.1\r\nHost: t\r\n\r\n" * n)
            generations = set()
            for _ in range(n):
                status, headers, body = _read_response(f)
                assert status == 200
                generations.add(json.loads(body)["generation"])
            assert generations == {1}

    def test_batched_post_then_pipelined_get(self, server):
        """A fully-read body hands unconsumed pipelined bytes to the next
        request — the leftover path of the async body channel."""
        payload = json.dumps({"regions": ["0:2,0:2,0:2"]}).encode()
        post = (b"POST /v1/field/regions HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: " + str(len(payload)).encode() +
                b"\r\n\r\n" + payload)
        get = b"GET /v1/field/info HTTP/1.1\r\nHost: t\r\n\r\n"
        with socket.create_connection(server.server_address[:2],
                                      timeout=30) as s:
            f = s.makefile("rb")
            s.sendall(post + get)  # glued: the GET rides behind the body
            status, _, body = _read_response(f)
            assert status == 200 and len(body) == 2 * 2 * 2 * 8
            status, _, body = _read_response(f)
            assert status == 200 and json.loads(body)["key"] == "field"

    def test_aborted_upload_4xx_closes_instead_of_desync(self, server):
        """A 4xx answered with the declared body unread MUST close the
        connection: the pipelined request behind the body is never
        misparsed as a request (it would be body bytes)."""
        upload = (b"POST /v1/field HTTP/1.1\r\nHost: t\r\n"
                  b"Content-Length: 1000000\r\n\r\n" + b"x" * 128)
        get = b"GET /v1/field/info HTTP/1.1\r\nHost: t\r\n\r\n"
        with socket.create_connection(server.server_address[:2],
                                      timeout=30) as s:
            f = s.makefile("rb")
            s.sendall(upload + get)
            status, headers, body = _read_response(f)
            # Read-only server: 405, connection-closing by contract.
            assert status == 405
            assert headers.get("connection") == "close"
            assert "read-only" in json.loads(body)["error"]
            # The glued GET must never be answered; the socket just ends.
            assert f.read() == b""

    def test_request_then_4xx_then_fresh_connection(self, server):
        with socket.create_connection(server.server_address[:2],
                                      timeout=30) as s:
            f = s.makefile("rb")
            s.sendall(b"GET /v1/field/info HTTP/1.1\r\nHost: t\r\n\r\n")
            assert _read_response(f)[0] == 200
            s.sendall(b"POST /v1/field HTTP/1.1\r\nHost: t\r\n"
                      b"Content-Length: 10\r\n\r\n")
            status, headers, _ = _read_response(f)
            assert status == 405 and headers.get("connection") == "close"
        # The server stays healthy for new connections.
        with socket.create_connection(server.server_address[:2],
                                      timeout=30) as s:
            f = s.makefile("rb")
            s.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            assert _read_response(f)[0] == 200


# ---------------------------------------------------------------------------
# Replace-vs-read metadata atomicity (the PR's headline read-path bugfix)
# ---------------------------------------------------------------------------

class TestReplaceVsReadMetadata:
    def test_headers_always_describe_the_body(self, field, tmp_path):
        """Hammer reads while the key flips between archives of different
        dtypes: every response's shape/dtype header must describe the body
        that actually shipped (the old ``info()``-then-read pattern could
        pair generation-N headers with a generation-M body)."""
        f32 = tmp_path / "a32.rpra"
        f64 = tmp_path / "a64.rpra"
        f32.write_bytes(api.compress_chunked(
            field.astype(np.float32), codec=CODEC, bound=1e-3,
            chunk_shape=(TILE, TILE, TILE)))
        f64.write_bytes(api.compress_chunked(
            field, codec=CODEC, bound=1e-3,
            chunk_shape=(TILE, TILE, TILE)))
        store = ArchiveStore()
        store.add("field", str(f32))
        app = StoreApp(store)
        stop = threading.Event()
        flips = 0

        def flipper():
            nonlocal flips
            paths = [str(f64), str(f32)]
            while not stop.is_set():
                store.replace("field", paths[flips % 2])
                flips += 1

        errors = []

        def reader():
            import io
            while not stop.is_set():
                req = Request("GET", "/v1/field/region?r=0:4,0:4,0:4",
                              {}, io.BytesIO(b""))
                resp = app.handle(req)
                if resp.status != 200:
                    errors.append(f"status {resp.status}")
                    continue
                meta = json.loads(resp.headers["X-Repro-Header"])
                dtype = np.dtype(resp.headers["X-Repro-Dtype"])
                if meta["dtype"] != str(dtype):
                    errors.append("header dtype mismatch")
                expected = int(np.prod(meta["shape"])) * dtype.itemsize
                if len(resp.body) != expected:
                    errors.append(
                        f"body {len(resp.body)}B contradicts advertised "
                        f"{meta['shape']}/{dtype} ({expected}B)")

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=flipper))
        for t in threads:
            t.start()
        time.sleep(1.0)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        store.close()
        assert flips > 10, "replace thread never got going"
        assert not errors, errors[:5]


# ---------------------------------------------------------------------------
# Async-only transport guards
# ---------------------------------------------------------------------------

class TestAsyncGuards:
    def test_read_timeout_drops_idle_connection(self, grid_path):
        store = ArchiveStore()
        store.add("field", grid_path)
        srv, thread = _start(store, read_timeout=0.5)
        try:
            with socket.create_connection(srv.server_address,
                                          timeout=30) as s:
                s.sendall(b"GET /v1/field")  # a stalled partial request
                s.settimeout(10)
                assert s.recv(1024) == b""  # dropped by the timeout scan
        finally:
            srv.shutdown()
            srv.server_close()
            store.close()
            thread.join(timeout=10)

    def test_max_connections_guard_503(self, grid_path):
        store = ArchiveStore()
        store.add("field", grid_path)
        srv, thread = _start(store, max_connections=4)
        held = []
        try:
            for _ in range(4):
                held.append(socket.create_connection(srv.server_address,
                                                     timeout=30))
            # Give the loop a beat to adopt all four.
            deadline = time.monotonic() + 5
            while len(srv._conns) < 4 and time.monotonic() < deadline:
                time.sleep(0.01)
            with socket.create_connection(srv.server_address,
                                          timeout=30) as extra:
                f = extra.makefile("rb")
                status, headers, body = _read_response(f)
                assert status == 503
                assert headers.get("connection") == "close"
                assert "connection limit" in json.loads(body)["error"]
            # Releasing one slot restores service.
            held.pop().close()
            deadline = time.monotonic() + 5
            while len(srv._conns) > 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            with socket.create_connection(srv.server_address,
                                          timeout=30) as s:
                f = s.makefile("rb")
                s.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                assert _read_response(f)[0] == 200
        finally:
            for sock in held:
                sock.close()
            srv.shutdown()
            srv.server_close()
            store.close()
            thread.join(timeout=10)

    def test_malformed_request_line_400(self, grid_path):
        store = ArchiveStore()
        store.add("field", grid_path)
        srv, thread = _start(store)
        try:
            with socket.create_connection(srv.server_address,
                                          timeout=30) as s:
                f = s.makefile("rb")
                s.sendall(b"NONSENSE\r\n\r\n")
                status, headers, _ = _read_response(f)
                assert status == 400
                assert headers.get("connection") == "close"
            with socket.create_connection(srv.server_address,
                                          timeout=30) as s:
                f = s.makefile("rb")
                s.sendall(b"PATCH /v1/field HTTP/1.1\r\nHost: t\r\n\r\n")
                assert _read_response(f)[0] == 501
        finally:
            srv.shutdown()
            srv.server_close()
            store.close()
            thread.join(timeout=10)


# ---------------------------------------------------------------------------
# Write path over the selectors front end (chunked upload via the channel)
# ---------------------------------------------------------------------------

class TestAsyncWritePath:
    def test_push_replace_delete_roundtrip(self, tmp_path, field):
        store = ArchiveStore()
        manager = IngestManager(tmp_path / "root", store)
        srv, thread = _start(store, ingest=manager)
        try:
            out = push_field(srv.url, "f", field.astype(np.float32),
                             bound=1e-3, codec=CODEC)
            assert out["status"] == 201 and out["generation"] == 1
            status, headers, body = _fetch(srv.url,
                                           "/v1/f/region?r=0:4,0:4,0:4")
            assert status == 200
            got = np.frombuffer(body, dtype=headers["x-repro-dtype"])
            assert got.shape == (4 * 4 * 4,)
            # Replace: generation bumps, the ETag flips.
            etag1 = _fetch(srv.url, "/v1/f/info")[1]["etag"]
            out = push_field(srv.url, "f", field.astype(np.float32),
                             bound=1e-4, codec=CODEC)
            assert out["status"] == 200 and out["generation"] == 2
            status, headers, body = _fetch(srv.url, "/v1/f/info")
            assert json.loads(body)["generation"] == 2
            assert headers["etag"] != etag1
            out = delete_key(srv.url, "f")
            assert out["deleted"] == "f"
            assert _fetch(srv.url, "/v1/f/info")[0] == 404
        finally:
            srv.shutdown()
            srv.server_close()
            store.close()
            thread.join(timeout=10)

    def test_auth_denied_mid_stream_push(self, tmp_path, field):
        """A 401 while the chunked body is still streaming: the client must
        surface the status (not EPIPE), and the server must stay healthy."""
        store = ArchiveStore()
        manager = IngestManager(tmp_path / "root", store)
        manager.manifest.set_auth("*", "sesame")
        srv, thread = _start(store, ingest=manager)
        try:
            with pytest.raises(PushError) as err:
                push_field(srv.url, "f", field.astype(np.float32),
                           bound=1e-3, codec=CODEC)
            assert err.value.status == 401
            out = push_field(srv.url, "f", field.astype(np.float32),
                             bound=1e-3, codec=CODEC, token="sesame")
            assert out["status"] == 201
        finally:
            srv.shutdown()
            srv.server_close()
            store.close()
            thread.join(timeout=10)


def _fetch(base, path):
    import http.client
    from urllib.parse import urlsplit

    parts = urlsplit(base)
    conn = http.client.HTTPConnection(parts.hostname, parts.port, timeout=30)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, {k.lower(): v for k, v in resp.getheaders()}, \
            resp.read()
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Client-side bugfixes
# ---------------------------------------------------------------------------

class TestClientFixes:
    def test_url_base_path_prefix_is_honored(self, tmp_path, field):
        """``push http://host/prefix`` must hit /prefix/v1/<key> (404 on a
        server without that mount), not silently post to /v1/<key>."""
        store = ArchiveStore()
        manager = IngestManager(tmp_path / "root", store)
        srv, thread = _start(store, ingest=manager)
        try:
            with pytest.raises(PushError) as err:
                push_field(srv.url + "/prefix", "f",
                           field.astype(np.float32), bound=1e-3, codec=CODEC)
            assert err.value.status == 404
            with pytest.raises(PushError) as err:
                delete_key(srv.url + "/prefix/", "f")
            assert err.value.status == 404
            # The unprefixed URL still lands on the real route.
            out = push_field(srv.url, "f", field.astype(np.float32),
                             bound=1e-3, codec=CODEC)
            assert out["status"] == 201
        finally:
            srv.shutdown()
            srv.server_close()
            store.close()
            thread.join(timeout=10)

    def test_non_finite_range_fails_fast_client_side(self):
        bad = np.ones((8, 8), dtype=np.float32)
        bad[3, 3] = np.nan
        # An unroutable URL proves no connection is even attempted.
        with pytest.raises(ValueError, match="non-finite"):
            push_field("http://127.0.0.1:9", "f", bad, bound=1e-3)
        bad[3, 3] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            push_field("http://127.0.0.1:9", "f", bad, bound=1e-3)

    def test_zero_d_source_clear_error(self):
        with pytest.raises(ValueError, match="0-d"):
            push_field("http://127.0.0.1:9", "f",
                       np.array(3.0, dtype=np.float32), bound=1e-3)

"""Tests for the autoencoder zoo (architecture, training, persistence)."""

import numpy as np
import pytest

from repro.autoencoders import (
    AE_REGISTRY,
    AutoencoderConfig,
    ConvAutoencoder,
    FullyConnectedAutoencoder,
    ResidualConvAutoencoder,
    SlicedWassersteinAutoencoder,
    VariationalAutoencoder,
    WassersteinAutoencoder,
    create_autoencoder,
)
from repro.autoencoders.divergences import (
    dip_covariance_penalty,
    kl_standard_normal,
    mmd_rbf,
    sliced_wasserstein_distance,
)
from repro.nn import Trainer, TrainingConfig


@pytest.fixture(scope="module")
def cfg2d():
    return AutoencoderConfig(ndim=2, block_size=8, latent_size=4, channels=(2, 4), seed=3)


@pytest.fixture(scope="module")
def blocks2d():
    rng = np.random.default_rng(0)
    i, j = np.meshgrid(np.linspace(0, 1, 8), np.linspace(0, 1, 8), indexing="ij")
    base = np.sin(4 * i) * np.cos(3 * j)
    return base[None, None] + 0.3 * rng.normal(size=(48, 1, 8, 8))


class TestConfig:
    def test_defaults_valid(self):
        cfg = AutoencoderConfig()
        assert cfg.block_shape == (32, 32)
        assert cfg.block_elements == 1024

    def test_reduced_spatial_and_bottleneck(self):
        cfg = AutoencoderConfig(ndim=2, block_size=32, latent_size=16, channels=(8, 16, 32))
        assert cfg.reduced_spatial == (4, 4)
        assert cfg.bottleneck_features == 32 * 16

    def test_latent_ratio(self):
        cfg = AutoencoderConfig(ndim=3, block_size=8, latent_size=16, channels=(4,))
        assert cfg.latent_ratio == pytest.approx(512 / 16)

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            AutoencoderConfig(ndim=4)
        with pytest.raises(ValueError):
            AutoencoderConfig(block_size=0)
        with pytest.raises(ValueError):
            AutoencoderConfig(latent_size=0)
        with pytest.raises(ValueError):
            AutoencoderConfig(channels=())


class TestConvAutoencoderArchitecture:
    def test_encode_decode_shapes_2d(self, cfg2d, blocks2d):
        ae = ConvAutoencoder(cfg2d)
        ae.fit_normalization(blocks2d)
        latents = ae.encode(blocks2d[:5, 0])
        assert latents.shape == (5, 4)
        recon = ae.decode(latents)
        assert recon.shape == (5, 8, 8)

    def test_encode_accepts_channel_dimension(self, cfg2d, blocks2d):
        ae = ConvAutoencoder(cfg2d)
        ae.fit_normalization(blocks2d)
        a = ae.encode(blocks2d[:3])
        b = ae.encode(blocks2d[:3, 0])
        np.testing.assert_allclose(a, b)

    def test_encode_decode_shapes_3d(self):
        cfg = AutoencoderConfig(ndim=3, block_size=8, latent_size=6, channels=(2, 4), seed=0)
        ae = ConvAutoencoder(cfg)
        blocks = np.random.default_rng(0).normal(size=(4, 8, 8, 8))
        ae.fit_normalization(blocks)
        assert ae.encode(blocks).shape == (4, 6)
        assert ae.reconstruct(blocks).shape == (4, 8, 8, 8)

    def test_block_size_incompatible_with_stages_raises(self):
        with pytest.raises(ValueError):
            ConvAutoencoder(AutoencoderConfig(ndim=2, block_size=12, latent_size=4,
                                              channels=(2, 4, 8)))

    def test_normalization_roundtrip(self, cfg2d):
        ae = ConvAutoencoder(cfg2d)
        ae.set_normalization(-2.0, 6.0)
        values = np.array([-2.0, 2.0, 6.0])
        np.testing.assert_allclose(ae.denormalize(ae.normalize(values)), values)

    def test_normalization_validation(self, cfg2d):
        ae = ConvAutoencoder(cfg2d)
        with pytest.raises(ValueError):
            ae.set_normalization(1.0, 1.0)

    def test_fit_normalization_constant_data(self, cfg2d):
        ae = ConvAutoencoder(cfg2d)
        ae.fit_normalization(np.full((4, 8, 8), 3.0))
        assert ae.norm_max > ae.norm_min

    def test_wrong_block_shape_raises(self, cfg2d):
        ae = ConvAutoencoder(cfg2d)
        with pytest.raises(ValueError):
            ae.encode(np.zeros((2, 7, 7)))

    def test_deterministic_prediction(self, cfg2d, blocks2d):
        ae = ConvAutoencoder(cfg2d)
        ae.fit_normalization(blocks2d)
        a = ae.reconstruct(blocks2d[:4, 0])
        b = ae.reconstruct(blocks2d[:4, 0])
        np.testing.assert_array_equal(a, b)

    def test_save_load_roundtrip(self, cfg2d, blocks2d, tmp_path):
        ae = ConvAutoencoder(cfg2d)
        ae.fit_normalization(blocks2d)
        path = tmp_path / "model.npz"
        ae.save(path)
        clone = ConvAutoencoder(AutoencoderConfig(ndim=2, block_size=8, latent_size=4,
                                                  channels=(2, 4), seed=99))
        clone.load(path)
        np.testing.assert_allclose(ae.reconstruct(blocks2d[:3, 0]),
                                   clone.reconstruct(blocks2d[:3, 0]))
        assert clone.norm_min == ae.norm_min


class TestTrainingBehaviour:
    @pytest.mark.parametrize("kind", sorted(AE_REGISTRY))
    def test_every_ae_type_trains_and_reduces_loss(self, kind, cfg2d, blocks2d):
        ae = create_autoencoder(kind, cfg2d)
        ae.fit_normalization(blocks2d)
        trainer = Trainer(ae, config=TrainingConfig(epochs=3, batch_size=16,
                                                    learning_rate=2e-3, seed=0))
        history = trainer.fit(blocks2d)
        assert np.isfinite(history.epoch_losses).all()
        assert history.epoch_losses[-1] < history.epoch_losses[0] * 1.05

    def test_unknown_kind_raises(self, cfg2d):
        with pytest.raises(KeyError):
            create_autoencoder("unknown", cfg2d)

    def test_swae_regularizer_returns_matching_gradient_shape(self, cfg2d):
        ae = SlicedWassersteinAutoencoder(cfg2d, regularization_weight=2.0)
        latent = np.random.default_rng(0).normal(size=(16, 4))
        loss, grad = ae.latent_regularizer(latent)
        assert grad.shape == latent.shape
        assert loss >= 0.0

    def test_swae_invalid_params_raise(self, cfg2d):
        with pytest.raises(ValueError):
            SlicedWassersteinAutoencoder(cfg2d, regularization_weight=-1)
        with pytest.raises(ValueError):
            SlicedWassersteinAutoencoder(cfg2d, n_projections=0)

    def test_wae_regularizer(self, cfg2d):
        ae = WassersteinAutoencoder(cfg2d)
        latent = np.random.default_rng(0).normal(size=(8, 4))
        loss, grad = ae.latent_regularizer(latent)
        assert grad.shape == latent.shape and loss >= 0

    def test_vae_encode_is_deterministic_but_sampling_is_not(self, cfg2d, blocks2d):
        ae = VariationalAutoencoder(cfg2d)
        ae.fit_normalization(blocks2d)
        a = ae.encode(blocks2d[:4, 0])
        b = ae.encode(blocks2d[:4, 0])
        np.testing.assert_array_equal(a, b)
        s1 = ae.sample_latent(blocks2d[:4, 0])
        s2 = ae.sample_latent(blocks2d[:4, 0])
        assert not np.array_equal(s1, s2)  # the instability the paper points out

    def test_vae_beta_validation(self, cfg2d):
        with pytest.raises(ValueError):
            VariationalAutoencoder(cfg2d, beta=-1.0)


class TestDivergences:
    def test_swd_zero_for_identical_sets(self):
        z = np.random.default_rng(0).normal(size=(32, 4))
        loss, grad = sliced_wasserstein_distance(z, z.copy(), rng=0)
        assert loss == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(grad, 0.0, atol=1e-12)

    def test_swd_positive_for_shifted_distribution(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(64, 4)) + 5.0
        prior = rng.normal(size=(64, 4))
        loss, _ = sliced_wasserstein_distance(z, prior, rng=1)
        assert loss > 1.0

    def test_swd_gradient_descends(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(32, 3)) + 2.0
        prior = rng.normal(size=(32, 3))
        loss0, grad = sliced_wasserstein_distance(z, prior, rng=2)
        loss1, _ = sliced_wasserstein_distance(z - 0.5 * grad / np.abs(grad).max() * 2.0,
                                               prior, rng=2)
        assert loss1 < loss0

    def test_swd_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            sliced_wasserstein_distance(np.zeros((4, 2)), np.zeros((5, 2)))

    def test_mmd_zero_for_identical_sets(self):
        z = np.random.default_rng(0).normal(size=(16, 3))
        loss, _ = mmd_rbf(z, z.copy())
        assert loss == pytest.approx(0.0, abs=1e-12)

    def test_mmd_positive_for_shifted_sets(self):
        rng = np.random.default_rng(1)
        loss, _ = mmd_rbf(rng.normal(size=(32, 3)) + 3.0, rng.normal(size=(32, 3)))
        assert loss > 0.01

    def test_mmd_gradient_numerically(self):
        rng = np.random.default_rng(2)
        z = rng.normal(size=(6, 2))
        p = rng.normal(size=(6, 2))
        _, grad = mmd_rbf(z, p)
        eps = 1e-6
        numeric = np.zeros_like(z)
        for idx in np.ndindex(*z.shape):
            zp = z.copy(); zp[idx] += eps
            zm = z.copy(); zm[idx] -= eps
            numeric[idx] = (mmd_rbf(zp, p)[0] - mmd_rbf(zm, p)[0]) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, rtol=1e-4, atol=1e-7)

    def test_kl_zero_for_standard_normal_params(self):
        mu = np.zeros((8, 4))
        logvar = np.zeros((8, 4))
        kl, gmu, glv = kl_standard_normal(mu, logvar)
        assert kl == pytest.approx(0.0)
        np.testing.assert_allclose(gmu, 0.0)
        np.testing.assert_allclose(glv, 0.0)

    def test_kl_positive_otherwise(self):
        kl, _, _ = kl_standard_normal(np.ones((4, 2)), np.ones((4, 2)))
        assert kl > 0

    def test_dip_penalty_zero_for_identity_covariance(self):
        rng = np.random.default_rng(0)
        mu = rng.normal(size=(20000, 2))
        loss, _ = dip_covariance_penalty(mu, 1.0, 1.0)
        assert loss < 0.05

    def test_dip_penalty_gradient_shape(self):
        mu = np.random.default_rng(1).normal(size=(16, 3))
        _, grad = dip_covariance_penalty(mu)
        assert grad.shape == mu.shape


class TestComparatorModels:
    def test_ae_a_nominal_ratio(self):
        ae = FullyConnectedAutoencoder(segment_length=512, reduction=8, n_layers=3)
        assert ae.nominal_compression_ratio == 512
        assert ae.config.latent_size == 1

    def test_ae_a_shapes(self):
        ae = FullyConnectedAutoencoder(segment_length=64, reduction=4, n_layers=2)
        segs = np.random.default_rng(0).normal(size=(8, 64))
        ae.fit_normalization(segs)
        latents = ae.encode(segs)
        assert latents.shape == (8, 4)
        assert ae.decode(latents).shape == (8, 64)

    def test_ae_a_validation(self):
        with pytest.raises(ValueError):
            FullyConnectedAutoencoder(segment_length=100, reduction=8, n_layers=3)
        with pytest.raises(ValueError):
            FullyConnectedAutoencoder(segment_length=512, reduction=1)

    def test_ae_a_trains(self):
        ae = FullyConnectedAutoencoder(segment_length=64, reduction=4, n_layers=2)
        data = np.random.default_rng(0).normal(size=(32, 1, 64))
        ae.fit_normalization(data)
        hist = Trainer(ae, config=TrainingConfig(epochs=3, batch_size=8, seed=0)).fit(data)
        assert hist.epoch_losses[-1] <= hist.epoch_losses[0]

    def test_ae_b_fixed_ratio_64(self):
        ae = ResidualConvAutoencoder(block_size=16, ndim=3, channels=4, n_residual=2,
                                     n_compression=2)
        assert ae.fixed_compression_ratio == pytest.approx(64.0)

    def test_ae_b_2d_shapes(self):
        ae = ResidualConvAutoencoder(block_size=16, ndim=2, channels=4, n_residual=2,
                                     n_compression=2)
        blocks = np.random.default_rng(0).normal(size=(4, 16, 16))
        ae.fit_normalization(blocks)
        latents = ae.encode(blocks)
        assert latents.shape == (4, 16)
        assert ae.reconstruct(blocks).shape == (4, 16, 16)

    def test_ae_b_block_size_validation(self):
        with pytest.raises(ValueError):
            ResidualConvAutoencoder(block_size=10, n_compression=2)

"""Tests for block splitting / reassembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocking import BlockGrid, reassemble_blocks, split_into_blocks


class TestSplitReassemble:
    @pytest.mark.parametrize("shape,block", [
        ((64,), 16), ((100,), 16),
        ((64, 64), 32), ((37, 53), 16), ((32, 48), (16, 8)),
        ((16, 16, 16), 8), ((20, 33, 17), 8),
    ])
    def test_roundtrip(self, shape, block):
        rng = np.random.default_rng(0)
        data = rng.normal(size=shape)
        blocks, grid = split_into_blocks(data, block)
        np.testing.assert_array_equal(reassemble_blocks(blocks, grid), data)

    def test_block_count(self):
        data = np.zeros((64, 96))
        blocks, grid = split_into_blocks(data, 32)
        assert blocks.shape == (2 * 3, 32, 32)
        assert grid.n_blocks == 6

    def test_non_divisible_shape_pads_with_edge_values(self):
        data = np.arange(10, dtype=np.float64)
        blocks, grid = split_into_blocks(data, 8)
        assert blocks.shape == (2, 8)
        assert blocks[1, -1] == data[-1]  # edge padding repeats the last value

    def test_block_contents_are_contiguous_tiles(self):
        data = np.arange(16, dtype=np.float64).reshape(4, 4)
        blocks, _ = split_into_blocks(data, 2)
        np.testing.assert_array_equal(blocks[0], [[0, 1], [4, 5]])
        np.testing.assert_array_equal(blocks[1], [[2, 3], [6, 7]])

    def test_grid_dict_roundtrip(self):
        _, grid = split_into_blocks(np.zeros((10, 12)), 4)
        grid2 = BlockGrid.from_dict(grid.to_dict())
        assert grid2 == grid

    def test_invalid_block_size_raises(self):
        with pytest.raises(ValueError):
            split_into_blocks(np.zeros((8, 8)), 0)

    def test_wrong_block_count_on_reassemble_raises(self):
        blocks, grid = split_into_blocks(np.zeros((8, 8)), 4)
        with pytest.raises(ValueError):
            reassemble_blocks(blocks[:-1], grid)

    def test_rejects_4d(self):
        with pytest.raises(ValueError):
            split_into_blocks(np.zeros((2, 2, 2, 2)), 2)

    def test_block_size_sequence_mismatch_raises(self):
        with pytest.raises(ValueError):
            split_into_blocks(np.zeros((8, 8)), (4, 4, 4))

    @settings(max_examples=30, deadline=None)
    @given(h=st.integers(1, 50), w=st.integers(1, 50), b=st.integers(1, 16))
    def test_roundtrip_property_2d(self, h, w, b):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(h, w))
        blocks, grid = split_into_blocks(data, b)
        np.testing.assert_array_equal(reassemble_blocks(blocks, grid), data)

"""Tests for the chunked out-of-core pipeline: container, facade, CLI.

Acceptance (ISSUE 3): a field streamed through ``compress_chunked`` with
``workers=2`` decompresses within the requested error bound and is
bit-identical to the serial chunked output.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import Abs, PtwRel, Rel
from repro.api import compress_chunked, iter_decompressed_chunks
from repro.cli import main as cli_main
from repro.data.loader import map_f32, save_f32
from repro.encoding.container import (
    Archive,
    ChunkedIndex,
    archive_version,
    build_chunked_archive,
    is_archive,
    is_chunked_archive,
)
from repro.utils.parallel import parallel_imap

EB = 1e-3


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(2026)
    return rng.standard_normal((96, 40)).cumsum(axis=0)


@pytest.fixture(scope="module")
def serial_blob(field):
    return compress_chunked(field, codec="sz21", bound=Rel(EB), chunk_size=800)


class TestParallelImap:
    def test_serial_is_lazy_and_ordered(self):
        seen = []

        def items():
            for i in range(5):
                seen.append(i)
                yield i

        gen = parallel_imap(lambda x: x * x, items())
        assert next(gen) == 0
        assert seen == [0]  # input consumed lazily, one item per result
        assert list(gen) == [1, 4, 9, 16]

    def test_parallel_preserves_order(self):
        result = list(parallel_imap(_square, range(20), workers=2, max_pending=3))
        assert result == [x * x for x in range(20)]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom 3"):
            list(parallel_imap(_explode_on_3, range(8), workers=2))


class TestChunkedContainer:
    def test_version_dispatch(self, field, serial_blob):
        single = repro.compress(field, codec="sz21", bound=Rel(EB))
        assert archive_version(single) == 1
        assert archive_version(serial_blob) == 2
        assert is_archive(serial_blob) and is_chunked_archive(serial_blob)
        assert not is_chunked_archive(single)
        with pytest.raises(ValueError, match="chunked"):
            Archive.from_bytes(serial_blob)
        with pytest.raises(ValueError, match="not a chunked archive"):
            ChunkedIndex.from_bytes(single)

    def test_index_table(self, field, serial_blob):
        index = ChunkedIndex.from_bytes(serial_blob)
        assert index.codec == "sz21"
        assert index.shape == field.shape
        assert index.n_chunks == 5  # 96 rows, 20 rows (800 elems) per chunk
        assert index.starts[0] == 0 and index.starts[-1] == field.shape[0]
        assert index.chunk_shape(0) == (20, 40)
        assert index.chunk_shape(4) == (16, 40)
        # bound record is the *user's* request; chunks carry the derived Abs
        assert index.bound_mode == "rel" and index.bound_value == EB
        assert "chunked" in index.meta

    def test_chunks_decode_independently_and_out_of_order(self, field, serial_blob):
        index = ChunkedIndex.from_bytes(serial_blob)
        vrange = float(field.max() - field.min())
        for i in reversed(range(index.n_chunks)):
            chunk_blob = index.chunk_bytes(serial_blob, i)
            archive = Archive.from_bytes(chunk_blob)
            assert archive.bound_mode == "abs"  # global range pass, per-chunk Abs
            recon = repro.decompress(chunk_blob)
            slab = field[index.chunk_slice(i)]
            assert recon.shape == slab.shape
            assert float(np.max(np.abs(slab - recon))) <= EB * vrange

    def test_chunk_corruption_detected(self, serial_blob):
        index = ChunkedIndex.from_bytes(serial_blob)
        flipped = bytearray(serial_blob)
        flipped[index.data_start + index.offsets[2] + index.lengths[2] // 2] ^= 0x40
        with pytest.raises(ValueError, match="corrupt archive"):
            repro.decompress(bytes(flipped))

    def test_truncation_detected(self, serial_blob):
        with pytest.raises(ValueError, match="corrupt archive"):
            ChunkedIndex.from_bytes(serial_blob[:-3])
        with pytest.raises(ValueError, match="corrupt archive"):
            ChunkedIndex.from_bytes(serial_blob + b"\x00")

    def test_nonzero_axis_rejected(self):
        blob = build_chunked_archive(codec="sz21", shape=(4, 6), dtype="float64",
                                     bound_mode="rel", bound_value=EB, axis=1,
                                     starts=[0, 3, 6], chunk_blobs=[b"x", b"y"])
        with pytest.raises(ValueError, match="unsupported chunk axis"):
            ChunkedIndex.from_bytes(blob)

    def test_builder_validates(self):
        with pytest.raises(ValueError, match="at least one chunk"):
            build_chunked_archive(codec="sz21", shape=(4,), dtype="float64",
                                  bound_mode="rel", bound_value=EB, axis=0,
                                  starts=[0], chunk_blobs=[])


class TestChunkedFacade:
    def test_bound_matches_single_shot_rel(self, field, serial_blob):
        """The chunked guarantee is the single-shot one: one global range
        pass fixes the absolute bound for every chunk."""
        vrange = float(field.max() - field.min())
        recon = repro.decompress(serial_blob)
        assert float(np.max(np.abs(field - recon))) <= EB * vrange

    def test_workers2_bit_identical_and_bounded(self, field, serial_blob):
        parallel_blob = compress_chunked(field, codec="sz21", bound=Rel(EB),
                                         chunk_size=800, workers=2)
        assert parallel_blob == serial_blob  # bit-identical to serial output
        recon = repro.decompress(parallel_blob, workers=2)
        vrange = float(field.max() - field.min())
        assert float(np.max(np.abs(field - recon))) <= EB * vrange
        assert np.array_equal(recon, repro.decompress(serial_blob))

    def test_abs_and_ptwrel_pass_through(self, field):
        blob = compress_chunked(field, codec="szinterp", bound=Abs(0.02),
                                chunk_size=640)
        assert float(np.max(np.abs(field - repro.decompress(blob)))) <= 0.02
        positive = np.abs(field) + 0.5
        blob = compress_chunked(positive, codec="sz21", bound=PtwRel(1e-2),
                                chunk_size=640)
        recon = repro.decompress(blob)
        assert np.all(np.abs(positive - recon) <= 1e-2 * positive * (1 + 1e-12))

    def test_iterator_source_needs_data_range_for_rel(self, field):
        with pytest.raises(ValueError, match="data_range"):
            compress_chunked(iter([field]), codec="sz21", bound=Rel(EB))

    def test_iterator_source(self, field, serial_blob):
        def blocks():
            for start in range(0, field.shape[0], 7):
                yield field[start:start + 7]

        blob = compress_chunked(blocks(), codec="sz21", bound=Rel(EB), chunk_size=800,
                                data_range=(float(field.min()), float(field.max())))
        recon = repro.decompress(blob)
        vrange = float(field.max() - field.min())
        assert recon.shape == field.shape
        assert float(np.max(np.abs(field - recon))) <= EB * vrange
        # 7-row blocks regroup toward 20-row chunks (800 elems / 40 cols), so
        # boundaries differ from the array path but coverage must not — and no
        # chunk may overshoot the requested size.
        index = ChunkedIndex.from_bytes(blob)
        assert index.starts[-1] == field.shape[0]
        assert int(np.diff(index.starts).max()) <= 20

    def test_oversized_block_mid_stream_stays_chunk_bounded(self):
        """An oversized block arriving while rows are buffered must be
        slab-split, not concatenated into one giant chunk."""
        rng = np.random.default_rng(3)
        small = rng.standard_normal((2, 10))
        huge = rng.standard_normal((50, 10))
        blob = compress_chunked(iter([small, huge]), codec="szinterp",
                                bound=Abs(0.05), chunk_size=100)  # 10 rows/chunk
        index = ChunkedIndex.from_bytes(blob)
        row_counts = np.diff(index.starts)
        assert int(row_counts.max()) <= 10
        recon = repro.decompress(blob)
        full = np.concatenate([small, huge], axis=0)
        assert float(np.max(np.abs(full - recon))) <= 0.05

    def test_reversed_data_range_message(self, field):
        with pytest.raises(ValueError, match="reversed"):
            compress_chunked(iter([field]), codec="sz21", bound=Rel(EB),
                             data_range=(5.0, 1.0))

    def test_slow_head_keeps_order(self):
        result = list(parallel_imap(_slow_head, range(10), workers=2, max_pending=3))
        assert result == list(range(10))

    def test_iterator_blocks_must_agree(self):
        with pytest.raises(ValueError, match="trailing dimensions"):
            compress_chunked(iter([np.zeros((2, 3)), np.zeros((2, 4))]),
                             codec="sz21", bound=Abs(1.0), chunk_size=4)
        with pytest.raises(ValueError, match="one dtype"):
            compress_chunked(
                iter([np.zeros((2, 3)), np.zeros((2, 3), dtype=np.float32)]),
                codec="sz21", bound=Abs(1.0), chunk_size=4)

    def test_memmap_npy_source(self, field, tmp_path):
        path = tmp_path / "field.npy"
        np.save(path, field)
        blob = compress_chunked(str(path), codec="szinterp", bound=Rel(EB),
                                chunk_size=1024)
        vrange = float(field.max() - field.min())
        assert float(np.max(np.abs(field - repro.decompress(blob)))) <= EB * vrange
        with pytest.raises(ValueError, match="array layout"):
            compress_chunked(str(tmp_path / "raw.bin"), codec="sz21")

    def test_decompress_into_out_memmap(self, field, serial_blob, tmp_path):
        out = np.memmap(tmp_path / "out.dat", dtype=np.float64, mode="w+",
                        shape=field.shape)
        result = repro.decompress(serial_blob, out=out)
        assert result is out
        assert np.array_equal(np.asarray(out), repro.decompress(serial_blob))

    def test_out_refuses_lossy_narrowing(self, field, serial_blob):
        out32 = np.empty(field.shape, dtype=np.float32)
        with pytest.raises(ValueError, match="losslessly"):
            repro.decompress(serial_blob, out=out32)
        with pytest.raises(ValueError, match="shape"):
            repro.decompress(serial_blob, out=np.empty((3, 3)))

    def test_iter_decompressed_chunks_streams_in_order(self, field, serial_blob):
        pieces = list(iter_decompressed_chunks(serial_blob))
        assert [p[0] for p in pieces] == [slice(0, 20), slice(20, 40), slice(40, 60),
                                          slice(60, 80), slice(80, 96)]
        assembled = np.concatenate([chunk for _, chunk in pieces], axis=0)
        assert np.array_equal(assembled, repro.decompress(serial_blob))

    def test_narrow_dtype_restores_through_chunks(self, field):
        f32 = field.astype(np.float32)
        blob = compress_chunked(f32, codec="sz21", bound=Rel(1e-3), chunk_size=800)
        recon = repro.decompress(blob)
        assert recon.dtype == np.float32
        index = ChunkedIndex.from_bytes(blob)
        assert index.dtype == "float32"

    def test_dtype_cast_param(self, field):
        """dtype= casts slab-wise and is recorded in the header (the CLI uses
        this to feed codecs the same float64 input as the single-shot path)."""
        f32 = field.astype(np.float32)
        blob = compress_chunked(f32, codec="szinterp", bound=Rel(EB),
                                chunk_size=800, dtype=np.float64)
        index = ChunkedIndex.from_bytes(blob)
        assert index.dtype == "float64"
        recon = repro.decompress(blob)
        assert recon.dtype == np.float64
        vrange = float(f32.max() - f32.min())
        assert float(np.max(np.abs(f32.astype(np.float64) - recon))) <= EB * vrange

    def test_abs_rel_roundtrip_never_loosens_bound(self):
        """Regression: Abs -> rel -> abs conversions used by the chunked path
        must never rebuild a bound above the requested absolute value."""
        from repro.bounds import Abs as AbsBound

        rng = np.random.default_rng(17)
        for _ in range(200):
            data = rng.uniform(-1e3, 1e3, size=4)
            vrange = float(data.max() - data.min())
            abs_value = float(rng.uniform(1e-12, 1.0))
            rel = AbsBound(abs_value).rel_equivalent(data)
            assert rel * vrange <= abs_value

    def test_chunk_size_validation(self, field):
        with pytest.raises(ValueError, match="chunk_size"):
            compress_chunked(field, codec="sz21", chunk_size=0)

    def test_single_shot_roundtrip_unaffected(self, field):
        blob = repro.compress(field, codec="sz21", bound=Rel(EB))
        recon = repro.decompress(blob)
        vrange = float(field.max() - field.min())
        assert float(np.max(np.abs(field - recon))) <= EB * vrange


class TestChunkedCLI:
    def test_cli_chunked_roundtrip(self, field, tmp_path, capsys):
        f32 = field.astype(np.float32)
        src = tmp_path / "in.f32"
        save_f32(src, f32)
        archive = tmp_path / "out.rpra"
        back = tmp_path / "back.f32"
        rc = cli_main(["compress", "--dims", "96", "40", "--error-bound", "1e-3",
                       "--compressor", "szinterp", "--chunk-size", "800",
                       str(src), str(archive)])
        assert rc == 0
        assert "chunks" in capsys.readouterr().out
        rc = cli_main(["decompress", str(archive), str(back)])
        assert rc == 0
        recon = np.fromfile(back, dtype="<f4").reshape(96, 40)
        vrange = float(f32.max() - f32.min())
        assert float(np.max(np.abs(f32 - recon))) <= 1e-3 * vrange * (1 + 1e-6)
        rc = cli_main(["info", "--dims", "96", "40", "--compressed", str(archive),
                       str(src), str(back)])
        assert rc == 0
        assert "chunks" in capsys.readouterr().out

    def test_map_f32_size_check(self, tmp_path):
        path = tmp_path / "short.f32"
        np.zeros(7, dtype="<f4").tofile(path)
        with pytest.raises(ValueError, match="expected"):
            map_f32(path, (4, 2))
        np.zeros(8, dtype="<f4").tofile(path)
        assert map_f32(path, (4, 2)).shape == (4, 2)


# Module-level helpers so spawn-based pools can pickle them.
def _square(x):
    return x * x


def _explode_on_3(x):
    if x == 3:
        raise ValueError(f"boom {x}")
    return x


def _slow_head(x):
    if x == 0:
        import time

        time.sleep(0.4)  # later items finish first; order must still hold
    return x

"""Tests for the command-line interface (train / compress / decompress / info)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import load_field_snapshot, save_f32
from repro.data.loader import load_f32
from repro.metrics import verify_error_bound


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    """Two small training snapshots + one test snapshot on disk as .f32 files."""
    root = tmp_path_factory.mktemp("cli")
    shape = (48, 64)
    paths = {}
    for i in range(2):
        data = load_field_snapshot("CESM-CLDHGH", timestep=i, split="train", shape=shape)
        path = root / f"train_{i}.f32"
        save_f32(path, data)
        paths[f"train_{i}"] = path
    test_data = load_field_snapshot("CESM-CLDHGH", split="test", shape=shape)
    paths["test"] = root / "test.f32"
    save_f32(paths["test"], test_data)
    paths["root"] = root
    paths["shape"] = shape
    return paths


COMMON_MODEL_ARGS = ["--block-size", "8", "--latent-size", "4", "--channels", "2", "4"]


class TestList:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("aesz", "sz21", "zfp", "szauto", "szinterp", "ae_a", "ae_b",
                     "lossless"):
            assert name in out
        assert "NO" in out  # ae_b is flagged as not error bounded


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dims", "8", "8", "x.f32"])

    def test_compress_requires_error_bound(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--dims", "8", "8", "a", "b"])

    def test_unknown_compressor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--dims", "8", "8", "a", "b",
                                       "--error-bound", "1e-2", "--compressor", "nope"])

    @pytest.mark.parametrize("name", ["ae_a", "ae_b"])
    def test_untrainable_comparators_not_offered(self, name):
        """AE-A/AE-B need a training pass the CLI does not expose."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--dims", "8", "8", "a", "b",
                                       "--error-bound", "1e-2", "--compressor", name])


class TestEndToEnd:
    def _dims(self, workdir):
        return [str(d) for d in workdir["shape"]]

    def test_train_compress_decompress_info_aesz(self, workdir, capsys):
        dims = self._dims(workdir)
        model = workdir["root"] / "model.npz"
        rc = main(["train", str(workdir["train_0"]), str(workdir["train_1"]),
                   "--dims", *dims, "--model", str(model),
                   "--epochs", "2", "--max-blocks", "64", *COMMON_MODEL_ARGS])
        assert rc == 0 and model.exists()

        compressed = workdir["root"] / "test.aesz"
        rc = main(["compress", str(workdir["test"]), str(compressed),
                   "--dims", *dims, "--error-bound", "1e-2",
                   "--model", str(model), *COMMON_MODEL_ARGS])
        assert rc == 0 and compressed.exists()
        assert compressed.stat().st_size < workdir["test"].stat().st_size

        restored = workdir["root"] / "test.out.f32"
        rc = main(["decompress", str(compressed), str(restored),
                   "--dims", *dims, "--model", str(model), *COMMON_MODEL_ARGS])
        assert rc == 0
        original = load_f32(workdir["test"], workdir["shape"]).astype(np.float64)
        reconstructed = load_f32(restored, workdir["shape"]).astype(np.float64)
        # float32 storage of the reconstruction adds at most a rounding epsilon.
        assert verify_error_bound(original, reconstructed, 1.05e-2) is None

        rc = main(["info", str(workdir["test"]), str(restored), "--dims", *dims,
                   "--compressed", str(compressed)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PSNR" in out and "compression" in out

    @pytest.mark.parametrize("name", ["sz21", "zfp", "szauto", "szinterp"])
    def test_baseline_compressors_roundtrip(self, workdir, name):
        dims = self._dims(workdir)
        compressed = workdir["root"] / f"test.{name}"
        restored = workdir["root"] / f"test.{name}.f32"
        assert main(["compress", "--dims", *dims, "--error-bound", "1e-3",
                     "--compressor", name, str(workdir["test"]), str(compressed)]) == 0
        assert main(["decompress", "--dims", *dims, "--compressor", name,
                     str(compressed), str(restored)]) == 0
        original = load_f32(workdir["test"], workdir["shape"]).astype(np.float64)
        reconstructed = load_f32(restored, workdir["shape"]).astype(np.float64)
        assert verify_error_bound(original, reconstructed, 1.05e-3) is None

    def test_compress_aesz_without_model_fails(self, workdir):
        dims = self._dims(workdir)
        with pytest.raises(SystemExit):
            main(["compress", "--dims", *dims, "--error-bound", "1e-2",
                  str(workdir["test"]), str(workdir["root"] / "x.aesz")])

    def test_decompress_wrong_dims_fails(self, workdir):
        dims = self._dims(workdir)
        compressed = workdir["root"] / "wrongdims.sz21"
        main(["compress", "--dims", *dims, "--error-bound", "1e-2",
              "--compressor", "sz21", str(workdir["test"]), str(compressed)])
        with pytest.raises(SystemExit):
            main(["decompress", "--dims", "10", "10", "--compressor", "sz21",
                  str(compressed), str(workdir["root"] / "bad.f32")])

    def test_decompress_is_self_describing(self, workdir):
        """Archives carry codec + dims + dtype: decompress takes only the paths."""
        dims = self._dims(workdir)
        compressed = workdir["root"] / "selfdesc.rpra"
        restored = workdir["root"] / "selfdesc.f32"
        assert main(["compress", "--dims", *dims, "--error-bound", "1e-3",
                     "--compressor", "szinterp", str(workdir["test"]),
                     str(compressed)]) == 0
        assert main(["decompress", str(compressed), str(restored)]) == 0
        original = load_f32(workdir["test"], workdir["shape"]).astype(np.float64)
        reconstructed = load_f32(restored, workdir["shape"]).astype(np.float64)
        assert verify_error_bound(original, reconstructed, 1.05e-3) is None

    def test_decompress_wrong_codec_flag_fails(self, workdir):
        dims = self._dims(workdir)
        compressed = workdir["root"] / "codeccheck.rpra"
        main(["compress", "--dims", *dims, "--error-bound", "1e-2",
              "--compressor", "sz21", str(workdir["test"]), str(compressed)])
        with pytest.raises(SystemExit):
            main(["decompress", "--compressor", "zfp", str(compressed),
                  str(workdir["root"] / "bad.f32")])

    def test_invalid_bound_value_is_clean_error(self, workdir):
        dims = self._dims(workdir)
        with pytest.raises(SystemExit, match="must be > 0"):
            main(["compress", "--dims", *dims, "--error-bound", "-1",
                  "--compressor", "sz21", str(workdir["test"]),
                  str(workdir["root"] / "neg.rpra")])

    def test_abs_bound_mode(self, workdir):
        dims = self._dims(workdir)
        compressed = workdir["root"] / "absmode.rpra"
        restored = workdir["root"] / "absmode.f32"
        original = load_f32(workdir["test"], workdir["shape"]).astype(np.float64)
        abs_eb = 1e-2 * float(original.max() - original.min())
        assert main(["compress", "--dims", *dims, "--error-bound", str(abs_eb),
                     "--bound-mode", "abs", "--compressor", "sz21",
                     str(workdir["test"]), str(compressed)]) == 0
        assert main(["decompress", str(compressed), str(restored)]) == 0
        reconstructed = load_f32(restored, workdir["shape"]).astype(np.float64)
        # float32 storage of the reconstruction adds at most a rounding epsilon.
        assert float(np.abs(reconstructed - original).max()) <= abs_eb * 1.05

    def test_embed_model_makes_aesz_archive_standalone(self, workdir):
        """--embed-model: decompression needs no --model (nor arch flags)."""
        dims = self._dims(workdir)
        model = workdir["root"] / "embed_model.npz"
        assert main(["train", str(workdir["train_0"]), "--dims", *dims,
                     "--model", str(model), "--epochs", "1", "--max-blocks", "32",
                     *COMMON_MODEL_ARGS]) == 0
        compressed = workdir["root"] / "embedded.rpra"
        restored = workdir["root"] / "embedded.f32"
        assert main(["compress", str(workdir["test"]), str(compressed),
                     "--dims", *dims, "--error-bound", "1e-2", "--embed-model",
                     "--model", str(model), *COMMON_MODEL_ARGS]) == 0
        assert main(["decompress", str(compressed), str(restored)]) == 0
        original = load_f32(workdir["test"], workdir["shape"]).astype(np.float64)
        reconstructed = load_f32(restored, workdir["shape"]).astype(np.float64)
        assert verify_error_bound(original, reconstructed, 1.05e-2) is None

    def test_legacy_raw_payload_still_decodes_with_default_aesz(self, workdir):
        """Pre-archive payloads keep working with the old CLI invocation
        (no --compressor: aesz was, and stays, the default)."""
        from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
        from repro.core import AESZCompressor, AESZConfig

        dims = self._dims(workdir)
        model = workdir["root"] / "legacy_model.npz"
        main(["train", str(workdir["train_0"]), "--dims", *dims, "--model", str(model),
              "--epochs", "1", "--max-blocks", "32", *COMMON_MODEL_ARGS])
        ae = SlicedWassersteinAutoencoder(AutoencoderConfig(
            ndim=2, block_size=8, latent_size=4, channels=(2, 4), seed=0))
        ae.load(model)
        comp = AESZCompressor(ae, AESZConfig(block_size=8))
        original = load_f32(workdir["test"], workdir["shape"]).astype(np.float64)
        raw = workdir["root"] / "legacy.aesz"
        raw.write_bytes(comp.compress(original, 1e-2))  # old-style raw payload

        restored = workdir["root"] / "legacy.f32"
        assert main(["decompress", "--model", str(model), "--dims", *dims,
                     *COMMON_MODEL_ARGS, "--", str(raw), str(restored)]) == 0
        reconstructed = load_f32(restored, workdir["shape"]).astype(np.float64)
        assert verify_error_bound(original, reconstructed, 1.05e-2) is None

    def test_aesz_decompress_without_model_fails_clearly(self, workdir):
        dims = self._dims(workdir)
        model = workdir["root"] / "noembed_model.npz"
        main(["train", str(workdir["train_0"]), "--dims", *dims, "--model", str(model),
              "--epochs", "1", "--max-blocks", "32", *COMMON_MODEL_ARGS])
        compressed = workdir["root"] / "noembed.rpra"
        main(["compress", str(workdir["test"]), str(compressed), "--dims", *dims,
              "--error-bound", "1e-2", "--model", str(model), *COMMON_MODEL_ARGS])
        with pytest.raises(SystemExit, match="no embedded model"):
            main(["decompress", str(compressed), str(workdir["root"] / "out.f32")])

"""Tests for the command-line interface (train / compress / decompress / info)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import load_field_snapshot, save_f32
from repro.data.loader import load_f32
from repro.metrics import verify_error_bound


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    """Two small training snapshots + one test snapshot on disk as .f32 files."""
    root = tmp_path_factory.mktemp("cli")
    shape = (48, 64)
    paths = {}
    for i in range(2):
        data = load_field_snapshot("CESM-CLDHGH", timestep=i, split="train", shape=shape)
        path = root / f"train_{i}.f32"
        save_f32(path, data)
        paths[f"train_{i}"] = path
    test_data = load_field_snapshot("CESM-CLDHGH", split="test", shape=shape)
    paths["test"] = root / "test.f32"
    save_f32(paths["test"], test_data)
    paths["root"] = root
    paths["shape"] = shape
    return paths


COMMON_MODEL_ARGS = ["--block-size", "8", "--latent-size", "4", "--channels", "2", "4"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dims", "8", "8", "x.f32"])

    def test_compress_requires_error_bound(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--dims", "8", "8", "a", "b"])

    def test_unknown_compressor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--dims", "8", "8", "a", "b",
                                       "--error-bound", "1e-2", "--compressor", "nope"])


class TestEndToEnd:
    def _dims(self, workdir):
        return [str(d) for d in workdir["shape"]]

    def test_train_compress_decompress_info_aesz(self, workdir, capsys):
        dims = self._dims(workdir)
        model = workdir["root"] / "model.npz"
        rc = main(["train", str(workdir["train_0"]), str(workdir["train_1"]),
                   "--dims", *dims, "--model", str(model),
                   "--epochs", "2", "--max-blocks", "64", *COMMON_MODEL_ARGS])
        assert rc == 0 and model.exists()

        compressed = workdir["root"] / "test.aesz"
        rc = main(["compress", str(workdir["test"]), str(compressed),
                   "--dims", *dims, "--error-bound", "1e-2",
                   "--model", str(model), *COMMON_MODEL_ARGS])
        assert rc == 0 and compressed.exists()
        assert compressed.stat().st_size < workdir["test"].stat().st_size

        restored = workdir["root"] / "test.out.f32"
        rc = main(["decompress", str(compressed), str(restored),
                   "--dims", *dims, "--model", str(model), *COMMON_MODEL_ARGS])
        assert rc == 0
        original = load_f32(workdir["test"], workdir["shape"]).astype(np.float64)
        reconstructed = load_f32(restored, workdir["shape"]).astype(np.float64)
        # float32 storage of the reconstruction adds at most a rounding epsilon.
        assert verify_error_bound(original, reconstructed, 1.05e-2) is None

        rc = main(["info", str(workdir["test"]), str(restored), "--dims", *dims,
                   "--compressed", str(compressed)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PSNR" in out and "compression" in out

    @pytest.mark.parametrize("name", ["sz21", "zfp", "szauto", "szinterp"])
    def test_baseline_compressors_roundtrip(self, workdir, name):
        dims = self._dims(workdir)
        compressed = workdir["root"] / f"test.{name}"
        restored = workdir["root"] / f"test.{name}.f32"
        assert main(["compress", "--dims", *dims, "--error-bound", "1e-3",
                     "--compressor", name, str(workdir["test"]), str(compressed)]) == 0
        assert main(["decompress", "--dims", *dims, "--compressor", name,
                     str(compressed), str(restored)]) == 0
        original = load_f32(workdir["test"], workdir["shape"]).astype(np.float64)
        reconstructed = load_f32(restored, workdir["shape"]).astype(np.float64)
        assert verify_error_bound(original, reconstructed, 1.05e-3) is None

    def test_compress_aesz_without_model_fails(self, workdir):
        dims = self._dims(workdir)
        with pytest.raises(SystemExit):
            main(["compress", "--dims", *dims, "--error-bound", "1e-2",
                  str(workdir["test"]), str(workdir["root"] / "x.aesz")])

    def test_decompress_wrong_dims_fails(self, workdir):
        dims = self._dims(workdir)
        compressed = workdir["root"] / "wrongdims.sz21"
        main(["compress", "--dims", *dims, "--error-bound", "1e-2",
              "--compressor", "sz21", str(workdir["test"]), str(compressed)])
        with pytest.raises(SystemExit):
            main(["decompress", "--dims", "10", "10", "--compressor", "sz21",
                  str(compressed), str(workdir["root"] / "bad.f32")])

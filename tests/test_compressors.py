"""Tests for the baseline compressors (SZ2.1, ZFP, SZauto, SZinterp, AE-A, AE-B, lossless)."""

import numpy as np
import pytest

from repro.compressors import (
    AEACompressor,
    AEBCompressor,
    LosslessCompressor,
    SZ21Compressor,
    SZAutoCompressor,
    SZInterpCompressor,
    ZFPCompressor,
)
from repro.compressors.sz21 import _sequential_lorenzo_decode, _sequential_lorenzo_encode
from repro.compressors.zfp import _forward_transform, _inverse_transform, _linf_gain
from repro.metrics import psnr, verify_error_bound
from repro.nn import TrainingConfig

TRADITIONAL = [SZ21Compressor, ZFPCompressor, SZAutoCompressor, SZInterpCompressor]


@pytest.fixture(scope="module")
def small_2d(field_2d):
    return field_2d[:48, :64]


@pytest.fixture(scope="module")
def small_3d(field_3d):
    return field_3d[:16, :16, :16]


class TestTraditionalCompressorsCommon:
    @pytest.mark.parametrize("compressor_cls", TRADITIONAL)
    @pytest.mark.parametrize("eb", [1e-2, 1e-3])
    def test_bound_held_2d(self, compressor_cls, eb, small_2d):
        comp = compressor_cls()
        recon = comp.decompress(comp.compress(small_2d, eb))
        assert recon.shape == small_2d.shape
        assert verify_error_bound(small_2d, recon, eb) is None

    @pytest.mark.parametrize("compressor_cls", TRADITIONAL)
    def test_bound_held_3d(self, compressor_cls, small_3d):
        comp = compressor_cls()
        recon = comp.decompress(comp.compress(small_3d, 1e-3))
        assert verify_error_bound(small_3d, recon, 1e-3) is None

    @pytest.mark.parametrize("compressor_cls", TRADITIONAL)
    def test_compresses_below_original_size(self, compressor_cls, small_2d):
        payload = compressor_cls().compress(small_2d, 1e-3)
        assert len(payload) < small_2d.size * 4

    @pytest.mark.parametrize("compressor_cls", TRADITIONAL)
    def test_quality_improves_with_tighter_bound(self, compressor_cls, small_2d):
        comp = compressor_cls()
        loose = comp.roundtrip(small_2d, 1e-2)
        tight = comp.roundtrip(small_2d, 1e-4)
        assert tight.psnr > loose.psnr
        assert tight.compression_ratio < loose.compression_ratio

    @pytest.mark.parametrize("compressor_cls", TRADITIONAL)
    def test_deterministic(self, compressor_cls, small_2d):
        comp = compressor_cls()
        assert comp.compress(small_2d, 1e-3) == comp.compress(small_2d, 1e-3)

    @pytest.mark.parametrize("compressor_cls", TRADITIONAL)
    def test_invalid_bound_raises(self, compressor_cls, small_2d):
        with pytest.raises(ValueError):
            compressor_cls().compress(small_2d, 0.0)

    @pytest.mark.parametrize("compressor_cls", TRADITIONAL)
    def test_1d_data_supported(self, compressor_cls):
        rng = np.random.default_rng(0)
        data = np.cumsum(rng.normal(size=500)) * 0.1
        comp = compressor_cls()
        recon = comp.decompress(comp.compress(data, 1e-3))
        assert verify_error_bound(data, recon, 1e-3) is None

    @pytest.mark.parametrize("compressor_cls", TRADITIONAL)
    def test_roundtrip_result_metrics(self, compressor_cls, small_2d):
        # small_2d is float64, so the original counts 64 bits per value.
        result = compressor_cls().roundtrip(small_2d, 1e-3)
        assert result.compression_ratio > 1.0
        assert result.n_points == small_2d.size
        assert result.original_dtype == "float64"
        assert result.original_bytes == small_2d.size * 8
        assert result.bit_rate == pytest.approx(64.0 / result.compression_ratio)
        assert np.isfinite(result.psnr)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_roundtrip_bit_rate_independent_of_dtype_width(self, small_2d, dtype):
        """bit_rate counts compressed bits per point, not per original byte."""
        result = SZ21Compressor().roundtrip(small_2d.astype(dtype), 1e-3)
        assert result.original_bytes == small_2d.size * np.dtype(dtype).itemsize
        assert result.bit_rate == pytest.approx(
            result.compressed_bytes * 8.0 / small_2d.size)


class TestSZ21Internals:
    def test_sequential_lorenzo_roundtrip_2d(self):
        rng = np.random.default_rng(0)
        block = np.cumsum(np.cumsum(rng.normal(size=(12, 12)), axis=0), axis=1) * 0.01
        codes, unpred, recon = _sequential_lorenzo_encode(block, 1e-3, 65536)
        decoded = _sequential_lorenzo_decode(codes, np.array(unpred), 1e-3, 65536)
        np.testing.assert_array_equal(decoded, recon)
        assert np.max(np.abs(recon - block)) <= 1e-3 * (1 + 1e-9)

    def test_sequential_lorenzo_roundtrip_3d(self):
        rng = np.random.default_rng(1)
        block = rng.normal(size=(6, 6, 6))
        codes, unpred, recon = _sequential_lorenzo_encode(block, 0.05, 256)
        decoded = _sequential_lorenzo_decode(codes, np.array(unpred), 0.05, 256)
        np.testing.assert_array_equal(decoded, recon)

    def test_error_feedback_degrades_prediction_at_large_bounds(self):
        """The classic SZ behaviour the paper exploits: prediction quality is
        tied to the reconstructed (not original) neighbours."""
        x = np.linspace(0, 1, 32)
        block = np.sin(2 * np.pi * np.add.outer(x, x))
        _, _, recon_small = _sequential_lorenzo_encode(block, 1e-4, 65536)
        _, _, recon_large = _sequential_lorenzo_encode(block, 5e-2, 65536)
        err_small = np.abs(recon_small - block).mean() / 1e-4
        err_large = np.abs(recon_large - block).mean() / 5e-2
        # Relative to the bound, the large-eb reconstruction is not better.
        assert err_large >= 0.3 * err_small

    def test_regression_selected_for_planar_blocks(self, small_2d):
        comp = SZ21Compressor(block_size_2d=8)
        i, j = np.meshgrid(np.arange(64, dtype=float), np.arange(64, dtype=float),
                           indexing="ij")
        plane = 0.5 * i - 0.25 * j
        payload = comp.compress(plane, 1e-3)
        recon = comp.decompress(payload)
        assert verify_error_bound(plane, recon, 1e-3) is None
        # A plane compresses extremely well (few distinct codes).
        assert len(payload) < plane.size


class TestZFPInternals:
    def test_transform_inverse_roundtrip(self):
        rng = np.random.default_rng(0)
        blocks = rng.normal(size=(5, 4, 4))
        np.testing.assert_allclose(_inverse_transform(_forward_transform(blocks)), blocks,
                                   atol=1e-12)

    def test_transform_energy_preservation(self):
        rng = np.random.default_rng(1)
        blocks = rng.normal(size=(3, 4, 4, 4))
        coeffs = _forward_transform(blocks)
        np.testing.assert_allclose(np.sum(blocks**2), np.sum(coeffs**2), rtol=1e-10)

    def test_linf_gain_reasonable(self):
        assert 1.0 <= _linf_gain(1) <= 4.0
        assert _linf_gain(3) == pytest.approx(_linf_gain(1) ** 3)

    def test_smooth_block_concentrates_energy_in_low_frequencies(self):
        x = np.linspace(0, 1, 4)
        block = np.add.outer(x, x)[None]
        coeffs = _forward_transform(block)[0]
        assert abs(coeffs[0, 0]) > np.abs(coeffs[2:, 2:]).max()


class TestAEAComparator:
    @pytest.fixture(scope="class")
    def trained_aea(self, field_2d):
        comp = AEACompressor(segment_length=512, seed=0)
        comp.train([field_2d], TrainingConfig(epochs=2, batch_size=16, seed=0),
                   max_segments=96)
        return comp

    def test_error_bound_held(self, trained_aea, field_2d):
        recon = trained_aea.decompress(trained_aea.compress(field_2d, 1e-2))
        assert verify_error_bound(field_2d, recon, 1e-2) is None

    def test_roundtrip_shape(self, trained_aea, field_2d):
        recon = trained_aea.decompress(trained_aea.compress(field_2d, 1e-2))
        assert recon.shape == field_2d.shape

    def test_3d_input_flattened(self, trained_aea, field_3d):
        recon = trained_aea.decompress(trained_aea.compress(field_3d, 1e-2))
        assert recon.shape == field_3d.shape
        assert verify_error_bound(field_3d, recon, 1e-2) is None


class TestAEBComparator:
    @pytest.fixture(scope="class")
    def trained_aeb(self, field_3d):
        from repro.autoencoders import ResidualConvAutoencoder

        ae = ResidualConvAutoencoder(block_size=8, ndim=3, channels=4, n_residual=2,
                                     n_compression=2, seed=0)
        comp = AEBCompressor(autoencoder=ae, seed=0)
        comp.train([field_3d], TrainingConfig(epochs=2, batch_size=16, seed=0), max_blocks=64)
        return comp

    def test_fixed_compression_ratio(self, trained_aeb, field_3d):
        # float32 input: the nominal ratio assumes equal-precision input/latents.
        result = trained_aeb.roundtrip(field_3d.astype(np.float32), 1e-3)
        # The ratio is fixed by the architecture (not by the error bound).
        assert result.compression_ratio == pytest.approx(trained_aeb.fixed_compression_ratio,
                                                         rel=0.35)

    def test_not_error_bounded(self, trained_aeb, field_3d):
        """AE-B ignores the requested bound — exactly the paper's criticism."""
        result_a = trained_aeb.compress(field_3d, 1e-2)
        result_b = trained_aeb.compress(field_3d, 1e-6)
        assert len(result_a) == len(result_b)

    def test_roundtrip_shape(self, trained_aeb, field_3d):
        recon = trained_aeb.decompress(trained_aeb.compress(field_3d))
        assert recon.shape == field_3d.shape


class TestLossless:
    def test_exact_roundtrip(self, small_2d):
        comp = LosslessCompressor()
        recon = comp.decompress(comp.compress(small_2d.astype(np.float32)))
        np.testing.assert_array_equal(recon, small_2d.astype(np.float32))

    def test_low_ratio_on_floating_point_data(self, small_2d):
        result = LosslessCompressor().roundtrip(small_2d.astype(np.float32), 0.0)
        assert result.compression_ratio < 4.0  # the ~2:1 regime the paper cites

"""The dynamic half of the lock discipline: CheckedLock + guarded attributes.

Direct CheckedLock behaviour needs no environment — the class enforces its
invariants whenever instantiated.  Guard *descriptors* install at import time
under ``REPRO_SANITIZE=1``, so those paths run in a subprocess.
"""

import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

from repro.lint.core import parse_file
from repro.lint.guarded import collect_guards
from repro.utils.concurrency import (
    CheckedLock,
    LockOrderError,
    LockUsageError,
    guard_specs,
    make_lock,
    sanitize_enabled,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestCheckedLock:
    def test_acquire_release_and_held(self):
        lock = CheckedLock("t")
        assert not lock.held() and not lock.locked()
        with lock:
            assert lock.held() and lock.locked()
        assert not lock.held() and not lock.locked()

    def test_held_is_per_thread(self):
        lock = CheckedLock("t")
        seen = []
        with lock:
            t = threading.Thread(target=lambda: seen.append(lock.held()))
            t.start()
            t.join()
        assert seen == [False]

    def test_self_deadlock_is_reported_not_hung(self):
        lock = CheckedLock("t")
        with lock:
            with pytest.raises(LockOrderError, match="self-deadlock"):
                lock.acquire()

    def test_abba_inversion_is_reported_on_second_order(self):
        a = CheckedLock("A")
        b = CheckedLock("B")
        with a:
            with b:  # establishes A -> B
                pass
        with b:
            with pytest.raises(LockOrderError, match="lock-order inversion"):
                a.acquire()  # B -> A: the seeded inversion

    def test_consistent_order_never_trips(self):
        a = CheckedLock("A")
        b = CheckedLock("B")
        for _ in range(3):
            with a:
                with b:
                    pass

    def test_release_without_hold(self):
        lock = CheckedLock("t")
        with pytest.raises(LockUsageError, match="does not hold"):
            lock.release()

    def test_nonblocking_acquire(self):
        lock = CheckedLock("t")
        grabbed = threading.Event()
        done = threading.Event()

        def holder():
            with lock:
                grabbed.set()
                done.wait(5)

        t = threading.Thread(target=holder)
        t.start()
        assert grabbed.wait(5)
        assert lock.acquire(blocking=False) is False
        assert not lock.held()
        done.set()
        t.join()


class TestMakeLock:
    def test_plain_lock_when_sanitizer_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled()
        assert not isinstance(make_lock("x"), CheckedLock)

    def test_checked_lock_when_sanitizer_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        lock = make_lock("x")
        assert isinstance(lock, CheckedLock) and lock.name == "x"


class TestSpecsMatchStaticAnnotations:
    """guard_specs() (dynamic) must agree with `# guarded by:` (static)."""

    def _static_guards(self, rel):
        ctx, errors = parse_file(REPO_ROOT / rel)
        assert not errors
        _, class_guards, diags = collect_guards(ctx)
        assert not diags
        # {class: {attr: lock}} -> {class: {lock: sorted attrs}}
        inverted = {}
        for cls, guards in class_guards.items():
            by_lock = inverted.setdefault(cls, {})
            for attr, lock in guards.items():
                by_lock.setdefault(lock, []).append(attr)
        return {cls: {lock: tuple(sorted(attrs))
                      for lock, attrs in by_lock.items()}
                for cls, by_lock in inverted.items()}

    def test_store_and_cache_specs_agree(self):
        import repro.store.aserver  # noqa: F401  (registers specs on import)
        import repro.store.cache  # noqa: F401
        import repro.store.ingest  # noqa: F401
        import repro.store.manifest  # noqa: F401
        import repro.store.server  # noqa: F401
        import repro.store.store  # noqa: F401

        registered = {
            name.rsplit(".", 1)[-1]: {lock: tuple(sorted(attrs))
                                      for lock, attrs in spec.items()}
            for name, spec in guard_specs().items()
            if name.startswith("repro.store.")
        }
        static = {}
        for rel in ("store.py", "cache.py", "manifest.py", "ingest.py",
                    "server.py", "aserver.py"):
            static.update(self._static_guards(f"src/repro/store/{rel}"))
        assert registered == static
        assert {"ArchiveStore", "_Entry", "TileCache", "StoreManifest",
                "IngestManager", "RouteMetrics"} <= set(registered)


def _run_sanitized(body: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(body)],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin",
             "REPRO_SANITIZE": "1"})


class TestGuardDescriptors:
    def test_unlocked_access_raises_and_locked_access_works(self):
        proc = _run_sanitized("""
            import numpy as np
            from repro.store.cache import TileCache
            from repro.utils.concurrency import GuardedAccessError

            cache = TileCache(max_bytes=1 << 20)  # __init__ writes are exempt
            try:
                cache._entries
            except GuardedAccessError as exc:
                assert "TileCache._entries" in str(exc), exc
            else:
                raise SystemExit("unlocked read did not raise")
            with cache._lock:
                assert len(cache._entries) == 0
            tile = np.arange(16, dtype=np.float32)
            cache.put(("k", 0), tile)
            np.testing.assert_array_equal(cache.get(("k", 0)), tile)
            print("OK")
        """)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_store_roundtrip_under_sanitizer(self):
        proc = _run_sanitized("""
            import numpy as np
            import repro
            from repro.store import ArchiveStore

            rng = np.random.default_rng(0)
            data = rng.standard_normal((4, 32, 32)).astype(np.float32)
            blob = repro.compress_chunked(data, codec="sz21", bound=1e-2,
                                          chunk_size=2048)
            with ArchiveStore(cache_bytes=1 << 20) as store:
                store.add("k", blob)
                region = store.read_region("k", tuple(
                    slice(0, n) for n in data.shape))
                assert region.shape == data.shape
                span = float(data.max() - data.min())
                assert np.max(np.abs(region - data)) <= 1e-2 * span + 1e-6
                stats = store.stats()
                assert stats["archives"] == 1
                store.remove("k")
            print("OK")
        """)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_seeded_inversion_is_flagged_under_sanitizer(self):
        proc = _run_sanitized("""
            from repro.utils.concurrency import LockOrderError, make_lock

            a = make_lock("store-lock")
            b = make_lock("pin-lock")
            with a:
                with b:
                    pass
            try:
                with b:
                    with a:
                        pass
            except LockOrderError as exc:
                assert "lock-order inversion" in str(exc), exc
                print("OK")
            else:
                raise SystemExit("inversion not detected")
        """)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_guards_are_zero_cost_when_disabled(self):
        if sanitize_enabled():
            pytest.skip("suite running with REPRO_SANITIZE=1")
        from repro.store.cache import TileCache

        assert not isinstance(TileCache.__dict__.get("_entries"), property)
        cache = TileCache(max_bytes=1 << 20)
        assert cache._entries == {} or len(cache._entries) == 0

"""Tests for the synthetic SDRBench-like dataset substrate."""

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    FieldSpec,
    SyntheticDataset,
    gaussian_random_field,
    get_dataset,
    load_f32,
    load_field_snapshot,
    load_training_blocks,
    save_f32,
    train_test_snapshots,
)
from repro.data.catalog import FIELDS, SPLITS
from repro.data.fields import gaussian_bumps, radial_coordinates, ricker_wavelet, smooth_ramp
from repro.data.loader import load_f64, save_f64

ALL_FIELDS = sorted(FIELDS)


class TestFieldBuildingBlocks:
    def test_grf_shape_and_normalization(self):
        f = gaussian_random_field((32, 48), power_exponent=3.0, rng=0)
        assert f.shape == (32, 48)
        assert abs(f.mean()) < 1e-10
        assert f.std() == pytest.approx(1.0, abs=1e-6)

    def test_grf_deterministic_in_seed(self):
        a = gaussian_random_field((16, 16), rng=5)
        b = gaussian_random_field((16, 16), rng=5)
        np.testing.assert_array_equal(a, b)

    def test_grf_phase_shift_translates_field(self):
        a = gaussian_random_field((32, 32), rng=1, phase_shift=(0, 0))
        b = gaussian_random_field((32, 32), rng=1, phase_shift=(0, 3))
        np.testing.assert_allclose(np.roll(a, 3, axis=1), b, atol=1e-8)

    def test_grf_smoothness_increases_with_exponent(self):
        rough = gaussian_random_field((64, 64), power_exponent=1.0, rng=2)
        smooth = gaussian_random_field((64, 64), power_exponent=4.0, rng=2)
        tv = lambda f: np.abs(np.diff(f, axis=0)).mean()  # noqa: E731
        assert tv(smooth) < tv(rough)

    def test_radial_coordinates_center_is_zero(self):
        r = radial_coordinates((5, 5))
        assert r[2, 2] == pytest.approx(0.0)

    def test_gaussian_bumps_nonnegative_peaks(self):
        f = gaussian_bumps((20, 20), 5, (1.0, 2.0), (1.0, 2.0), rng=0)
        assert f.max() > 0.5

    def test_ricker_peak_at_radius(self):
        r = np.linspace(0, 20, 200)
        w = ricker_wavelet(r, radius=10.0, width=2.0)
        assert abs(r[np.argmax(w)] - 10.0) < 0.2

    def test_smooth_ramp_monotone(self):
        ramp = smooth_ramp((10, 4), axis=0, low=0.0, high=1.0)
        assert np.all(np.diff(ramp[:, 0]) >= 0)


class TestGenerators:
    @pytest.mark.parametrize("field_name", ALL_FIELDS)
    def test_snapshot_shape_dtype_and_determinism(self, field_name):
        spec = FIELDS[field_name]
        small_shape = tuple(max(8, s // 4) for s in spec.default_shape)
        a = load_field_snapshot(field_name, shape=small_shape)
        b = load_field_snapshot(field_name, shape=small_shape)
        assert a.shape == small_shape
        assert a.dtype == np.float32
        assert np.all(np.isfinite(a))
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("field_name", ["CESM-CLDHGH", "NYX-baryon_density", "Hurricane-U"])
    def test_different_timesteps_differ_but_correlate(self, field_name):
        ds = get_dataset(FIELDS[field_name].app)
        spec = FIELDS[field_name]
        shape = tuple(max(8, s // 4) for s in spec.default_shape)
        t0 = ds.snapshot(spec.field, 0, shape).astype(np.float64)
        t1 = ds.snapshot(spec.field, 1, shape).astype(np.float64)
        assert not np.array_equal(t0, t1)
        corr = np.corrcoef(t0.ravel(), t1.ravel())[0, 1]
        assert corr > 0.3  # consecutive snapshots are strongly related

    def test_cesm_cloud_fraction_in_unit_interval(self):
        f = load_field_snapshot("CESM-CLDHGH", shape=(64, 64))
        assert f.min() >= 0.0 and f.max() <= 1.0

    def test_freqsh_has_exact_zero_regions(self):
        f = load_field_snapshot("CESM-FREQSH", shape=(128, 128))
        assert np.mean(f == 0.0) > 0.05

    def test_qvapor_nonnegative(self):
        f = load_field_snapshot("Hurricane-QVAPOR", shape=(8, 32, 32))
        assert f.min() >= 0.0

    def test_exafel_nonnegative_with_bright_peaks(self):
        f = load_field_snapshot("EXAFEL-raw", shape=(64, 48))
        assert f.min() >= 0.0
        assert f.max() > 10 * np.median(f)

    def test_rtm_wavefront_moves_with_time(self):
        ds = get_dataset("RTM")
        a = ds.snapshot("snapshot", 20, (24, 24, 16)).astype(np.float64)
        b = ds.snapshot("snapshot", 30, (24, 24, 16)).astype(np.float64)
        assert not np.array_equal(a, b)


class TestCatalog:
    def test_dataset_list(self):
        assert set(DATASETS) == {"CESM", "EXAFEL", "NYX", "Hurricane", "RTM"}

    def test_every_field_has_split(self):
        for spec in FIELDS.values():
            assert spec.app in SPLITS

    def test_field_spec_name(self):
        assert FIELDS["CESM-CLDHGH"].name == "CESM-CLDHGH"
        assert FIELDS["CESM-CLDHGH"].dimensionality == 2

    def test_unknown_application_raises(self):
        with pytest.raises(KeyError):
            SyntheticDataset("NOPE")

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError):
            get_dataset("CESM").snapshot("nope", 0)

    def test_unknown_field_name_raises(self):
        with pytest.raises(KeyError):
            load_field_snapshot("CESM-nope")

    def test_invalid_split_raises(self):
        with pytest.raises(ValueError):
            load_field_snapshot("CESM-CLDHGH", split="validation")

    def test_train_test_split_disjoint(self):
        train, test = train_test_snapshots("CESM-CLDHGH", shape=(32, 48),
                                           train_limit=2, test_limit=2)
        for tr in train:
            for te in test:
                assert not np.array_equal(tr, te)

    def test_nyx_test_split_uses_other_simulation(self):
        # Same time step but different seed offset => different data (Table VII).
        ds = get_dataset("NYX")
        t = ds.split.test_timesteps[0]
        same_sim = ds.snapshot("baryon_density", t, (16, 16, 16))
        other_sim = ds.snapshot("baryon_density", t, (16, 16, 16),
                                seed_offset=ds.split.test_seed_offset)
        assert not np.array_equal(same_sim, other_sim)

    def test_dataset_fields_listing(self):
        assert set(get_dataset("NYX").fields) == {
            "baryon_density", "temperature", "dark_matter_density"}

    def test_load_training_blocks_shape(self):
        blocks = load_training_blocks("CESM-CLDHGH", 16, max_blocks=32, shape=(64, 64),
                                      train_limit=1)
        assert blocks.ndim == 4  # (n, 1, 16, 16)
        assert blocks.shape[1:] == (1, 16, 16)
        assert blocks.shape[0] <= 32


class TestLoader:
    def test_f32_roundtrip(self, tmp_path):
        data = np.random.default_rng(0).normal(size=(8, 9)).astype(np.float32)
        path = tmp_path / "field.f32"
        save_f32(path, data)
        np.testing.assert_array_equal(load_f32(path, (8, 9)), data)

    def test_f64_roundtrip(self, tmp_path):
        data = np.random.default_rng(1).normal(size=(4, 5, 6))
        path = tmp_path / "field.f64"
        save_f64(path, data)
        np.testing.assert_array_equal(load_f64(path, (4, 5, 6)), data)

    def test_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "field.f32"
        save_f32(path, np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            load_f32(path, (5, 5))

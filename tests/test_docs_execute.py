"""Execute every fenced ``python`` block in README.md and docs/*.md.

Documentation snippets rot silently; this harness makes them part of the
test suite.  For each markdown file, all of its fenced ``python`` blocks are
concatenated (in order — later blocks may use names from earlier ones, like
a reader following the page top to bottom) and run in one fresh subprocess
with the in-tree ``src/`` on ``PYTHONPATH`` and a temporary working
directory, so snippets that write scratch files (``field.npy``,
``grid.rpra``) stay isolated and snippets that register demo codecs cannot
pollute this test process's registry.

Snippets must therefore be self-contained per file: build their own (tiny)
synthetic fields, assert what they claim.  Non-runnable material belongs in
```text / ```bash fences, which are ignored here.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"

DOC_FILES = sorted(
    [ROOT / "README.md"] + list((ROOT / "docs").glob("*.md")),
    key=lambda p: p.name,
)

_PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.S)


def _blocks(path: Path) -> list:
    return _PYTHON_BLOCK.findall(path.read_text())


@pytest.mark.parametrize("doc", DOC_FILES, ids=[p.name for p in DOC_FILES])
def test_doc_python_blocks_execute(doc, tmp_path, monkeypatch):
    blocks = _blocks(doc)
    if not blocks:
        pytest.skip(f"{doc.name} has no fenced python blocks")
    code = "\n\n".join(blocks)
    monkeypatch.setenv("PYTHONPATH", str(SRC))
    proc = subprocess.run(
        [sys.executable, "-c", code],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"a fenced python block in {doc.name} failed to execute "
        f"(docs are part of the contract — fix the snippet or the code):\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )


def test_every_doc_page_is_covered():
    """New doc pages are picked up automatically; README must have snippets."""
    names = {p.name for p in DOC_FILES}
    assert {"README.md", "api.md", "format.md", "architecture.md"} <= names
    assert _blocks(ROOT / "README.md"), "README.md lost its runnable quickstart"

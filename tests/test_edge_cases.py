"""Edge-case behaviour of the facade: NaN/Inf, constant, all-zero, 0-d fields.

The contract these tests pin down:

* Error-bounded codecs **refuse non-finite data with a clear ValueError**
  (document-and-raise) — a silent bound violation is never acceptable, and an
  error bound on NaN/Inf is undefined.  The check fires in the facade, before
  any transform, so ``PtwRel``'s log transform cannot NaN-poison a payload.
* The exact ``lossless`` codec accepts anything, NaN payloads included, and
  reconstructs bit-for-bit.
* Constant fields have zero value range; ``Rel`` falls back to treating the
  bound value as absolute (the long-documented convention of
  ``absolute_error_bound``), and reconstruction error stays within it.
* All-zero fields reconstruct exactly under ``PtwRel`` (the zero mask) and
  within the fallback bound under ``Rel``.
* 0-d arrays roundtrip with their shape — the header keeps ``()`` even though
  codecs see a length-1 vector.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import Abs, PtwRel, Rel
from repro.api import compress_chunked

BOUNDED = ("sz21", "zfp", "szauto", "szinterp")
EB = 1e-2


def _nan_field():
    data = np.linspace(0.0, 1.0, 64).reshape(8, 8)
    data[2, 3] = np.nan
    return data


def _inf_field():
    data = np.linspace(0.0, 1.0, 64).reshape(8, 8)
    data[1, 1] = np.inf
    return data


class TestNonFinite:
    @pytest.mark.parametrize("codec", BOUNDED)
    @pytest.mark.parametrize("field", [_nan_field, _inf_field])
    def test_bounded_codecs_refuse(self, codec, field):
        with pytest.raises(ValueError, match="non-finite"):
            repro.compress(field(), codec=codec, bound=Rel(EB))

    @pytest.mark.parametrize("bound", [Rel(EB), Abs(EB), PtwRel(EB)])
    def test_every_bound_mode_raises_before_transforming(self, bound):
        # PtwRel used to reach the log transform before the codec noticed.
        with pytest.raises(ValueError, match="non-finite"):
            repro.compress(_nan_field(), codec="sz21", bound=bound)

    def test_chunked_refuses_nonfinite(self):
        with pytest.raises(ValueError, match="NaN|non-finite"):
            compress_chunked(_nan_field(), codec="sz21", bound=Rel(EB), chunk_size=16)

    @pytest.mark.parametrize("field", [_nan_field, _inf_field])
    def test_lossless_is_exact_on_nonfinite(self, field):
        data = field()
        recon = repro.decompress(repro.compress(data, codec="lossless"))
        assert recon.dtype == data.dtype
        # bitwise, including the NaN payload
        assert np.array_equal(data.view(np.uint64), recon.view(np.uint64))

    def test_chunked_lossless_is_exact_on_nonfinite(self):
        data = _nan_field()
        blob = compress_chunked(data, codec="lossless", chunk_size=16)
        recon = repro.decompress(blob)
        assert np.array_equal(data.view(np.uint64), recon.view(np.uint64))


class TestConstantFields:
    @pytest.mark.parametrize("codec", BOUNDED)
    @pytest.mark.parametrize("value", [3.25, -2.5, 1e-30])
    def test_rel_fallback_bound_holds(self, codec, value):
        """vrange == 0: Rel's value acts as an absolute bound (documented)."""
        data = np.full((8, 8), value)
        recon = repro.decompress(repro.compress(data, codec=codec, bound=Rel(EB)))
        assert float(np.max(np.abs(data - recon))) <= EB

    @pytest.mark.parametrize("codec", BOUNDED)
    def test_ptw_rel_on_constant(self, codec):
        data = np.full((8, 8), -2.5)
        recon = repro.decompress(repro.compress(data, codec=codec, bound=PtwRel(EB)))
        assert np.all(np.abs(data - recon) <= EB * np.abs(data) * (1 + 1e-12))

    @pytest.mark.parametrize("codec", BOUNDED)
    def test_chunked_constant(self, codec):
        data = np.full((10, 6), 7.5)
        blob = compress_chunked(data, codec=codec, bound=Rel(EB), chunk_size=12)
        assert float(np.max(np.abs(data - repro.decompress(blob)))) <= EB


class TestAllZero:
    @pytest.mark.parametrize("codec", BOUNDED)
    def test_rel(self, codec):
        data = np.zeros((8, 8))
        recon = repro.decompress(repro.compress(data, codec=codec, bound=Rel(EB)))
        assert float(np.max(np.abs(recon))) <= EB

    @pytest.mark.parametrize("codec", BOUNDED)
    def test_ptw_rel_is_exact(self, codec):
        """eps * |0| = 0: the zero mask must reconstruct zeros exactly."""
        data = np.zeros((8, 8))
        recon = repro.decompress(repro.compress(data, codec=codec, bound=PtwRel(EB)))
        assert np.all(recon == 0.0)


class TestZeroD:
    @pytest.mark.parametrize("codec", BOUNDED + ("lossless",))
    def test_roundtrip_keeps_scalar_shape(self, codec):
        data = np.array(3.5)
        blob = repro.compress(data, codec=codec, bound=Rel(EB))
        recon = repro.decompress(blob)
        assert recon.shape == ()
        assert abs(float(recon) - 3.5) <= EB
        assert repro.read_header(blob).shape == ()

    def test_chunked_scalar(self):
        blob = compress_chunked(np.array(-1.25), codec="sz21", bound=Rel(EB))
        recon = repro.decompress(blob)
        assert recon.shape == ()
        assert abs(float(recon) + 1.25) <= EB


class TestOtherEdges:
    def test_empty_array_raises(self):
        with pytest.raises(ValueError):
            repro.compress(np.zeros((0, 4)), codec="sz21", bound=Rel(EB))
        with pytest.raises(ValueError):
            compress_chunked(np.zeros((0, 4)), codec="sz21", bound=Rel(EB))

    def test_integer_input_lossless_preserves_dtype(self):
        data = np.arange(64, dtype=np.int64).reshape(8, 8)
        recon = repro.decompress(repro.compress(data, codec="lossless"))
        assert recon.dtype == np.int64
        assert np.array_equal(data, recon)

    def test_integer_input_bounded_codec_ok(self):
        data = np.arange(64).reshape(8, 8)
        recon = repro.decompress(repro.compress(data, codec="sz21", bound=Rel(EB)))
        vrange = 63.0
        assert float(np.max(np.abs(data - recon))) <= EB * vrange

"""Tests for the entropy-coding substrate (bitstream, Huffman, backends, container)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encoding import (
    BitReader,
    BitWriter,
    ByteContainer,
    EntropyCodec,
    HuffmanCodec,
    StoreBackend,
    ZlibBackend,
    get_backend,
    huffman_code_lengths,
    pack_bits,
    unpack_bits,
)
from repro.encoding.lossless import Bz2Backend, LzmaBackend


class TestBitstream:
    def test_pack_unpack_roundtrip(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 0, 1, 1, 0], dtype=np.uint8)
        packed = pack_bits(bits)
        np.testing.assert_array_equal(unpack_bits(packed, 10), bits)

    def test_unpack_too_short_raises(self):
        with pytest.raises(ValueError):
            unpack_bits(b"\x00", 9)

    def test_writer_reader_uint_roundtrip(self):
        writer = BitWriter()
        writer.write_uint(5, 3)
        writer.write_uint(1023, 10)
        writer.write_uint(0, 1)
        reader = BitReader(writer.getvalue(), writer.n_bits)
        assert reader.read_uint(3) == 5
        assert reader.read_uint(10) == 1023
        assert reader.read_uint(1) == 0

    def test_writer_rejects_overflow(self):
        with pytest.raises(ValueError):
            BitWriter().write_uint(8, 3)

    def test_writer_rejects_bad_width(self):
        with pytest.raises(ValueError):
            BitWriter().write_uint(1, 0)

    def test_reader_eof(self):
        writer = BitWriter()
        writer.write_uint(1, 1)
        reader = BitReader(writer.getvalue(), 1)
        reader.read_bit()
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_read_bits_array(self):
        writer = BitWriter()
        writer.write_bits_array(np.array([1, 0, 1], dtype=np.uint8))
        reader = BitReader(writer.getvalue(), 3)
        np.testing.assert_array_equal(reader.read_bits_array(3), [1, 0, 1])

    def test_empty_writer(self):
        assert BitWriter().getvalue() == b""


class TestHuffmanCodeLengths:
    def test_balanced_counts_give_equal_lengths(self):
        lengths = huffman_code_lengths(np.array([10, 10, 10, 10]))
        assert set(lengths.tolist()) == {2}

    def test_skewed_counts_give_shorter_code_to_frequent_symbol(self):
        lengths = huffman_code_lengths(np.array([100, 1, 1]))
        assert lengths[0] < lengths[1]

    def test_single_symbol(self):
        assert huffman_code_lengths(np.array([5])).tolist() == [1]

    def test_kraft_inequality(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(1, 1000, size=50)
        lengths = huffman_code_lengths(counts)
        assert float(np.sum(2.0 ** (-lengths))) <= 1.0 + 1e-12

    def test_rejects_zero_counts(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.array([3, 0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            huffman_code_lengths(np.array([], dtype=np.int64))


class TestHuffmanCodec:
    def test_roundtrip_geometric(self):
        rng = np.random.default_rng(0)
        syms = rng.geometric(0.4, size=5000) + 100
        codec = HuffmanCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_roundtrip_uniform(self):
        rng = np.random.default_rng(1)
        syms = rng.integers(0, 300, size=2000)
        codec = HuffmanCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_single_symbol_stream(self):
        syms = np.full(123, 7, dtype=np.int64)
        codec = HuffmanCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_empty_stream(self):
        codec = HuffmanCodec()
        assert codec.decode(codec.encode(np.array([], dtype=np.int64))).size == 0

    def test_compresses_skewed_data(self):
        syms = np.zeros(10000, dtype=np.int64)
        syms[::100] = 1
        codec = HuffmanCodec()
        assert len(codec.encode(syms)) < syms.size  # far fewer than 1 byte/symbol

    def test_rejects_float_input(self):
        with pytest.raises(TypeError):
            HuffmanCodec().encode(np.array([1.5, 2.5]))

    def test_rejects_negative_symbols(self):
        with pytest.raises(ValueError):
            HuffmanCodec().encode(np.array([-1, 2]))

    def test_truncated_stream_raises(self):
        with pytest.raises(ValueError):
            HuffmanCodec().decode(b"\x01\x02")

    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(np.int64, st.integers(1, 300), elements=st.integers(0, 50)))
    def test_roundtrip_property(self, syms):
        codec = HuffmanCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)


class TestBackends:
    @pytest.mark.parametrize("name", ["zlib", "zstd", "bz2", "lzma", "store"])
    def test_roundtrip(self, name):
        backend = get_backend(name)
        data = bytes(range(256)) * 20
        assert backend.decompress(backend.compress(data)) == data

    def test_zlib_compresses_redundant_data(self):
        data = b"abcd" * 1000
        assert len(ZlibBackend().compress(data)) < len(data) // 10

    def test_store_backend_is_identity(self):
        assert StoreBackend().compress(b"xyz") == b"xyz"

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_backend("nope")

    def test_invalid_levels_raise(self):
        with pytest.raises(ValueError):
            ZlibBackend(level=11)
        with pytest.raises(ValueError):
            Bz2Backend(level=0)
        with pytest.raises(ValueError):
            LzmaBackend(preset=12)


class TestEntropyCodec:
    def test_roundtrip_with_huffman(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(32000, 33000, size=4000)
        codec = EntropyCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(codes)), codes)

    def test_roundtrip_without_huffman(self):
        codes = np.arange(100)
        codec = EntropyCodec(use_huffman=False)
        np.testing.assert_array_equal(codec.decode(codec.encode(codes)), codes)

    def test_empty_payload_raises(self):
        with pytest.raises(ValueError):
            EntropyCodec().decode(b"")

    def test_rejects_float_arrays(self):
        with pytest.raises(TypeError):
            EntropyCodec().encode(np.array([1.0, 2.0]))

    def test_skewed_codes_compress_below_raw_size(self):
        codes = np.full(20000, 32768, dtype=np.int64)
        codes[::50] += 1
        payload = EntropyCodec().encode(codes)
        assert len(payload) < codes.size * 2 / 8  # well under 2 bits/code here


class TestByteContainer:
    def test_roundtrip_sections(self):
        c = ByteContainer({"a": b"123", "b": b""})
        c["c"] = b"\x00\xff" * 10
        c2 = ByteContainer.from_bytes(c.to_bytes())
        assert c2["a"] == b"123"
        assert c2["b"] == b""
        assert c2["c"] == b"\x00\xff" * 10

    def test_json_roundtrip(self):
        c = ByteContainer()
        c.put_json("meta", {"x": 1, "y": [1, 2, 3]})
        c2 = ByteContainer.from_bytes(c.to_bytes())
        assert c2.get_json("meta") == {"x": 1, "y": [1, 2, 3]}

    def test_array_roundtrip(self):
        c = ByteContainer()
        arr = np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32)
        c.put_array("arr", arr)
        out = ByteContainer.from_bytes(c.to_bytes()).get_array("arr")
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == arr.dtype

    def test_bad_magic_raises(self):
        with pytest.raises(ValueError):
            ByteContainer.from_bytes(b"XXXX\x00\x00\x00\x00")

    def test_rejects_non_bytes_values(self):
        with pytest.raises(TypeError):
            ByteContainer()["x"] = 123

    def test_rejects_bad_keys(self):
        with pytest.raises(TypeError):
            ByteContainer()[""] = b"x"

    def test_contains_get_keys(self):
        c = ByteContainer({"a": b"1"})
        assert "a" in c and "b" not in c
        assert c.get("b", b"default") == b"default"
        assert list(c.keys()) == ["a"]
        assert len(c) == 1

    def test_nbytes_counts_serialized_size(self):
        c = ByteContainer({"a": b"12345"})
        assert c.nbytes == len(c.to_bytes())

"""The byte-level spec in ``docs/format.md`` must match the implementation.

The spec's worked example embeds a full hex dump of a v1 archive.  These
tests rebuild that archive with today's writer and compare it byte-for-byte
against the dump parsed **out of the documentation**, so the spec cannot rot:
change the writer and this fails; change the doc and this fails.
"""

from __future__ import annotations

import re
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.api import compress_chunked
from repro.encoding.container import (
    FRONT_PREFIX,
    Archive,
    GridIndex,
    front_size,
    parse_front,
)

FORMAT_MD = Path(__file__).resolve().parents[1] / "docs" / "format.md"

_DUMP_LINE = re.compile(r"^([0-9a-f]{8})\s\s((?:[0-9a-f]{2} ?)+?)\s*\|", re.M)


def _documented_bytes() -> bytes:
    """Parse the worked-example hex dump out of docs/format.md."""
    text = FORMAT_MD.read_text()
    matches = _DUMP_LINE.findall(text)
    assert matches, "docs/format.md no longer contains the worked-example dump"
    out = bytearray()
    for offset, hexpart in matches:
        assert int(offset, 16) == len(out), (
            f"dump offset {offset} does not match the bytes before it")
        out += bytes.fromhex(hexpart.replace(" ", ""))
    return bytes(out)


def _example_archive() -> bytes:
    """The exact constructor call shown in docs/format.md."""
    return Archive(codec="lossless", shape=(2, 2), dtype="float32",
                   bound_mode="abs", bound_value=0.5,
                   payload=b"\x01\x02\x03\x04", meta={},
                   extra={"note": b"hi"}).to_bytes()


class TestWorkedExample:
    def test_dump_matches_writer_bit_for_bit(self):
        documented = _documented_bytes()
        built = _example_archive()
        assert built == documented, (
            "the archive writer no longer produces the bytes documented in "
            "docs/format.md — update the spec together with the format change")

    def test_documented_offsets(self):
        """The offset walk-through table's key numbers."""
        blob = _example_archive()
        assert len(blob) == 193
        assert blob[:4] == b"RPRA"
        assert blob[4:6] == b"\x01\x00"                      # version 1
        (hlen,) = np.frombuffer(blob[6:10], dtype="<u4")
        assert hlen == 154
        assert front_size(blob[:FRONT_PREFIX]) == 10 + 154   # data_start
        assert blob[0xa4:0xac] == (4).to_bytes(8, "little")  # payload length
        assert blob[0xac:0xb0] == b"\x01\x02\x03\x04"        # payload
        assert blob[0xb0] == 1                               # n_extra
        assert blob[0xb3:0xb7] == b"note"
        assert blob[0xbf:0xc1] == b"hi"

    def test_documented_crcs(self):
        assert zlib.crc32(b"hi") == 3633523372
        assert zlib.crc32(b"\x01\x02\x03\x04") == 3057449933

    def test_header_json_is_canonical(self):
        """Sorted keys + no whitespace: one byte representation per header."""
        blob = _example_archive()
        version, header, data_start = parse_front(blob)
        assert version == 1
        import json

        canonical = json.dumps(header, separators=(",", ":"),
                               sort_keys=True).encode()
        assert blob[FRONT_PREFIX:data_start] == canonical


class TestGridSpecExample:
    """The v3 self-check block from docs/format.md, plus layout invariants."""

    def test_grid_index_math_as_documented(self):
        field = np.arange(20.0 * 12).reshape(20, 12)
        blob = compress_chunked(field, codec="lossless", bound=1e-3,
                                chunk_shape=(8, 8))
        index = GridIndex.from_bytes(blob)
        assert index.grid_shape == (3, 2)
        assert index.n_tiles == 6
        assert index.tile_slices(0) == (slice(0, 8), slice(0, 8))
        assert index.tile_slices(5) == (slice(16, 20), slice(8, 12))
        assert index.offsets[0] == 0
        assert index.offsets[2] == index.offsets[1] + index.lengths[1]
        assert index.region_tiles(((4, 10), (10, 12))) == [1, 3]

    def test_row_major_matches_ravel_multi_index(self):
        field = np.arange(9.0 * 10 * 4).reshape(9, 10, 4)
        blob = compress_chunked(field, codec="lossless", bound=1e-3,
                                chunk_shape=(4, 4, 3))
        index = GridIndex.from_bytes(blob)
        for coords in np.ndindex(*index.grid_shape):
            flat = int(np.ravel_multi_index(coords, index.grid_shape))
            assert index.tile_coords(flat) == coords

    def test_tiles_are_complete_v1_archives(self):
        field = np.arange(20.0 * 12).reshape(20, 12)
        blob = compress_chunked(field, codec="lossless", bound=1e-3,
                                chunk_shape=(8, 8))
        index = GridIndex.from_bytes(blob)
        for i in range(index.n_tiles):
            tile = Archive.from_bytes(index.tile_bytes(blob, i))
            assert tile.codec == "lossless"
            assert tile.shape == index.tile_shape(i)

    def test_offsets_exhaust_the_file(self):
        field = np.arange(20.0 * 12).reshape(20, 12)
        blob = compress_chunked(field, codec="lossless", bound=1e-3,
                                chunk_shape=(8, 8))
        index = GridIndex.from_bytes(blob)
        assert index.data_start + index.offsets[-1] + index.lengths[-1] == len(blob)
        with pytest.raises(ValueError, match="corrupt archive"):
            GridIndex.from_bytes(blob + b"\x00")
        with pytest.raises(ValueError, match="corrupt archive"):
            GridIndex.from_bytes(blob[:-1])

"""Format-stability: today's reader must decode the committed golden archives.

The fixtures under ``tests/golden/`` were written by the archive writer at a
known-good point (see ``make_golden.py`` there).  If a change to the container
or a codec's payload format breaks decoding of previously-written archives,
these tests fail loudly — that is their entire purpose.  Do not "fix" a
failure here by regenerating the fixtures unless the format change is
deliberate and versioned.

Elementwise-decoding codecs are held to **bit-exact** reconstruction; the
model-backed codecs (whose decode runs BLAS matmuls with build-dependent
summation order) are held to allclose + their recorded error bound.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.encoding.container import Archive, ChunkedIndex, GridIndex, archive_version

GOLDEN = Path(__file__).resolve().parent / "golden"
MANIFEST = json.loads((GOLDEN / "manifest.json").read_text())


def _rebuild_model(codec: str):
    """The deterministic seeded model for fingerprint-only fixtures."""
    if codec == "ae_a":
        from repro.compressors import AEACompressor

        return AEACompressor(segment_length=512, seed=0).autoencoder
    raise NotImplementedError(f"no rebuild recipe for {codec}")


@pytest.mark.parametrize("entry", MANIFEST, ids=[e["file"] for e in MANIFEST])
def test_golden_archive_decodes(entry):
    blob = (GOLDEN / entry["file"]).read_bytes()
    original = np.load(GOLDEN / f"{entry['input']}.npy")
    expected = np.load(GOLDEN / (entry["file"].removesuffix(".rpra") + ".expected.npy"))

    header = repro.read_header(blob)
    assert header.codec == entry["codec"]
    assert header.shape == original.shape
    assert header.bound_mode == entry["bound_mode"]
    assert header.bound_value == entry["bound_value"]
    expected_version = entry.get("version", 2 if entry["chunked"] else 1)
    assert archive_version(blob) == expected_version
    assert isinstance(header, {1: Archive, 2: ChunkedIndex,
                               3: GridIndex}[expected_version])

    autoencoder = None if entry["embed_model"] else _rebuild_model(entry["codec"])
    recon = repro.decompress(blob, autoencoder=autoencoder)
    assert recon.shape == original.shape

    if expected_version == 3:
        # The random-access path must read the pinned layout too: a corner
        # region equals the same slice of the full reconstruction.
        corner = tuple(slice(d // 3, d) for d in original.shape)
        piece = repro.read_region(blob, corner)
        assert np.array_equal(piece, recon[corner])

    if entry["bitwise"]:
        assert np.array_equal(recon.view(np.uint64), expected.view(np.uint64)), (
            f"{entry['file']}: reconstruction changed bit-for-bit — a format or "
            f"decode change broke a previously-written archive")
    else:
        assert np.allclose(recon, expected, rtol=1e-9, atol=1e-9), entry["file"]

    # Bound sanity against the original input (ae_b is fixed-ratio/unbounded).
    err = float(np.max(np.abs(original - recon)))
    vrange = float(original.max() - original.min())
    if entry["bound_mode"] == "rel" and entry["codec"] != "ae_b":
        assert err <= entry["bound_value"] * (vrange if vrange > 0 else 1.0) * (1 + 1e-9)
    elif entry["bound_mode"] == "abs":
        assert err <= entry["bound_value"] * (1 + 1e-9)
    elif entry["bound_mode"] == "ptw_rel":
        assert np.all(np.abs(original - recon)
                      <= entry["bound_value"] * np.abs(original) * (1 + 1e-9))


VECTORIZED = [e for e in MANIFEST if e["codec"] in ("sz21", "szinterp")]


@pytest.mark.parametrize("entry", VECTORIZED, ids=[e["file"] for e in VECTORIZED])
@pytest.mark.parametrize("scalar", [False, True], ids=["vectorized", "scalar"])
def test_golden_reencodes_byte_identical(entry, scalar):
    """Today's encoders must *reproduce* the committed archives, not merely
    decode them: the vectorized sz21/szinterp encode paths (and their scalar
    references) are pinned to the exact bytes written at fixture time, so an
    encode-path change that drifts the format fails here before it ships."""
    from repro import Abs, PtwRel, Rel
    from repro.api import compress_chunked

    blob = (GOLDEN / entry["file"]).read_bytes()
    data = np.load(GOLDEN / f"{entry['input']}.npy")
    bound = {"rel": Rel, "abs": Abs,
             "ptw_rel": PtwRel}[entry["bound_mode"]](entry["bound_value"])
    opts = {"scalar": True} if scalar else None
    header = repro.read_header(blob)
    if not entry["chunked"]:
        again = repro.compress(data, entry["codec"], bound, codec_options=opts)
    elif entry.get("version") == 3:
        again = compress_chunked(data, codec=entry["codec"], bound=bound,
                                 chunk_shape=header.chunk_shape,
                                 codec_options=opts)
    else:  # version-2: chunk_size in elements, starts[] in leading-axis rows
        rows = header.starts[1] - header.starts[0]
        again = compress_chunked(data, codec=entry["codec"], bound=bound,
                                 chunk_size=rows * int(np.prod(data.shape[1:])),
                                 codec_options=opts)
    assert again == blob, (
        f"{entry['file']}: re-encoding the golden input no longer reproduces "
        f"the committed archive bytes ({'scalar' if scalar else 'vectorized'} "
        f"encode path)")


def test_manifest_covers_every_codec():
    """Every registered codec has at least one golden archive."""
    from repro.registry import available_compressors

    covered = {e["codec"] for e in MANIFEST}
    assert covered == set(available_compressors())


def test_manifest_covers_every_bound_mode_and_both_formats():
    modes = {e["bound_mode"] for e in MANIFEST}
    assert modes == {"rel", "abs", "ptw_rel"}
    assert any(e["chunked"] for e in MANIFEST)
    assert any(not e["chunked"] for e in MANIFEST)


def test_golden_corruption_still_detected():
    """A flipped payload byte in a golden archive must not decode silently."""
    blob = bytearray((GOLDEN / "sz21_rel.rpra").read_bytes())
    blob[len(blob) // 2] ^= 0x01
    with pytest.raises(ValueError, match="corrupt archive"):
        repro.decompress(bytes(blob))

"""Entropy-stream hardening tests: format v2, v1 backward compat, corruption.

Covers the stream-format v2 rework of the Huffman stage: adversarial
alphabets, symbols >= 2**32 (which crashed the v1 encoder with a bare
``struct.error``), legacy v1 stream decoding, and the guarantee that every
malformed or truncated stream raises ``ValueError`` — never ``IndexError``
or ``struct.error``.
"""

import struct
import zlib

import numpy as np
import pytest

from repro.encoding import EntropyCodec, HuffmanCodec
from repro.encoding.huffman import _canonical_codes, huffman_code_lengths


def _encode_v1(symbols: np.ndarray) -> bytes:
    """Replica of the seed (v1) encoder: u32 symbol table, no lane table."""
    header_v1 = struct.Struct("<IQI")
    bits_header = struct.Struct("<Q")
    flat = np.asarray(symbols).ravel().astype(np.int64)
    if flat.size == 0:
        return header_v1.pack(0, 0, 0) + bits_header.pack(0)
    distinct, inverse, counts = np.unique(flat, return_inverse=True, return_counts=True)
    lengths = huffman_code_lengths(counts)
    _, len_sorted, codes, order = _canonical_codes(distinct, lengths)
    code_lut = np.zeros(distinct.size, dtype=np.uint64)
    len_lut = np.zeros(distinct.size, dtype=np.int64)
    code_lut[order] = codes
    len_lut[order] = len_sorted
    sym_codes = code_lut[inverse]
    sym_lens = len_lut[inverse]
    total_bits = int(sym_lens.sum())
    offsets = np.concatenate(([0], np.cumsum(sym_lens)[:-1]))
    bits = np.zeros(total_bits, dtype=np.uint8)
    for b in range(int(sym_lens.max())):
        sel = sym_lens > b
        if not np.any(sel):
            break
        shift = (sym_lens[sel] - 1 - b).astype(np.uint64)
        bits[offsets[sel] + b] = ((sym_codes[sel] >> shift) & np.uint64(1)).astype(np.uint8)
    payload = np.packbits(bits).tobytes()
    header = header_v1.pack(int(distinct.size), int(flat.size), int(distinct.max()))
    table = distinct.astype(np.uint32).tobytes() + len_lut.astype(np.uint8).tobytes()
    return header + table + bits_header.pack(total_bits) + payload


def _adversarial_arrays():
    rng = np.random.default_rng(42)
    fib = [1, 1]
    while len(fib) < 26:
        fib.append(fib[-1] + fib[-2])
    return {
        "empty": np.array([], dtype=np.int64),
        "single-symbol": np.full(1000, 12345, dtype=np.int64),
        "two-symbol": rng.integers(0, 2, size=4097),
        "one-element": np.array([7], dtype=np.int64),
        "skewed-65536-bins": rng.zipf(1.2, size=60000) % 65536,
        "max-length-codes": np.repeat(np.arange(len(fib)), fib),
        "huge-symbols": np.array([2**40, 2**40, 2**33 + 1, 5, 2**40, 2**62, 0]),
        "wide-uniform": rng.integers(0, 2**45, size=2000),
        "lane-boundary-sizes": rng.integers(0, 9, size=128 * 7 + 1),
    }


class TestHuffmanV2:
    @pytest.mark.parametrize("name,syms", list(_adversarial_arrays().items()))
    def test_roundtrip_bit_identical(self, name, syms):
        codec = HuffmanCodec()
        decoded = codec.decode(codec.encode(syms))
        np.testing.assert_array_equal(decoded, np.asarray(syms).ravel())

    def test_streams_carry_v2_magic(self):
        payload = HuffmanCodec().encode(np.arange(10))
        assert payload[:4] == b"HUF2"

    def test_encode_is_deterministic(self):
        syms = np.random.default_rng(0).integers(0, 500, size=3000)
        codec = HuffmanCodec()
        assert codec.encode(syms) == codec.encode(syms)

    def test_symbols_at_u32_boundary(self):
        """Regression: symbols >= 2**32 crashed the v1 encoder (struct.error)."""
        syms = np.array([2**32 - 1, 2**32, 2**32 + 1] * 10, dtype=np.int64)
        codec = HuffmanCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_uint64_beyond_int64_rejected(self):
        syms = np.array([2**63], dtype=np.uint64)
        with pytest.raises(ValueError):
            HuffmanCodec().encode(syms)

    def test_large_stream_roundtrip(self):
        rng = np.random.default_rng(3)
        syms = rng.zipf(1.5, size=300_000) % 200
        codec = HuffmanCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_low_memory_gather_path_matches(self, monkeypatch):
        """The O(n_lanes)-memory byte-gather fetch used for huge payloads must
        decode identically to the precomputed-window fast path."""
        import repro.encoding.huffman as hm
        rng = np.random.default_rng(9)
        syms = rng.zipf(1.4, size=100_000) % 500
        stream = HuffmanCodec().encode(syms)
        monkeypatch.setattr(hm, "_WINDOW_PRECOMPUTE_LIMIT", 0)
        np.testing.assert_array_equal(HuffmanCodec().decode(stream), syms)


class TestHuffmanV1Compat:
    @pytest.mark.parametrize("name,syms", [
        (k, v) for k, v in _adversarial_arrays().items()
        if k not in ("huge-symbols", "wide-uniform")  # v1 tables were u32-only
    ])
    def test_v1_stream_decodes(self, name, syms):
        decoded = HuffmanCodec().decode(_encode_v1(syms))
        np.testing.assert_array_equal(decoded, np.asarray(syms).ravel())

    def test_v1_entropy_stream_decodes(self):
        """Old EntropyCodec payloads (flag + zlib(v1 huffman)) still decode."""
        syms = np.random.default_rng(1).integers(32000, 33000, size=4000)
        legacy = b"\x01" + zlib.compress(_encode_v1(syms))
        np.testing.assert_array_equal(EntropyCodec().decode(legacy), syms)


class TestCorruptStreams:
    """Every malformed stream must raise ValueError, nothing else."""

    def _reference_stream(self):
        rng = np.random.default_rng(7)
        return HuffmanCodec().encode(rng.zipf(1.3, size=600) % 50)

    def test_all_truncations_raise(self):
        stream = self._reference_stream()
        codec = HuffmanCodec()
        for cut in range(len(stream)):
            with pytest.raises(ValueError):
                codec.decode(stream[:cut])

    @pytest.mark.parametrize("encoder", [
        lambda s: HuffmanCodec().encode(s),
        _encode_v1,
    ], ids=["v2", "v1"])
    def test_byte_flips_never_leak_raw_errors(self, encoder):
        rng = np.random.default_rng(7)
        syms = rng.zipf(1.3, size=600) % 50
        stream = encoder(syms)
        codec = HuffmanCodec()
        for i in range(len(stream)):
            corrupted = bytearray(stream)
            corrupted[i] ^= 0xFF
            try:
                out = codec.decode(bytes(corrupted))
            except ValueError:
                continue  # detected corruption: the intended failure mode
            assert isinstance(out, np.ndarray)  # undetectable flip: no crash

    def test_bit_flips_in_payload_raise_or_decode(self):
        stream = self._reference_stream()
        codec = HuffmanCodec()
        for bit in range(0, 8 * len(stream), 7):
            corrupted = bytearray(stream)
            corrupted[bit // 8] ^= 1 << (bit % 8)
            try:
                codec.decode(bytes(corrupted))
            except ValueError:
                pass

    def test_invalid_code_length_table_raises(self):
        # Lengths that cannot form a complete prefix code must be rejected.
        stream = bytearray(self._reference_stream())
        # header: magic(4) + IQQIIB; symbol table follows, then length table.
        n_distinct = struct.unpack_from("<I", stream, 4)[0]
        sym_width = struct.unpack_from("<B", stream, 4 + struct.calcsize("<IQQII"))[0]
        len_table_off = 4 + struct.calcsize("<IQQIIB") + sym_width * n_distinct
        stream[len_table_off] = 0xFF
        with pytest.raises(ValueError):
            HuffmanCodec().decode(bytes(stream))

    def test_corrupt_symbol_table_raises(self):
        """Flipping the top bit of a u64 table entry must not decode silently
        to a negative symbol."""
        syms = np.array([2**40, 2**40, 5, 6, 2**40, 2**33 + 1])
        stream = bytearray(HuffmanCodec().encode(syms))
        n_distinct = struct.unpack_from("<I", stream, 4)[0]
        table_off = 4 + struct.calcsize("<IQQIIB")
        # last u64 symbol entry, most-significant byte (little-endian)
        stream[table_off + 8 * n_distinct - 1] ^= 0x80
        with pytest.raises(ValueError):
            HuffmanCodec().decode(bytes(stream))

    def test_non_ascending_symbol_table_raises(self):
        syms = np.arange(300)
        stream = bytearray(HuffmanCodec().encode(syms))
        table_off = 4 + struct.calcsize("<IQQIIB")
        width = stream[table_off - 1]
        assert width == 2
        # swap the first two u16 symbol entries
        stream[table_off:table_off + 2], stream[table_off + 2:table_off + 4] = (
            stream[table_off + 2:table_off + 4], stream[table_off:table_off + 2])
        with pytest.raises(ValueError):
            HuffmanCodec().decode(bytes(stream))

    def test_empty_table_with_symbols_raises(self):
        header = b"HUF2" + struct.pack("<IQQIIB", 0, 10, 0, 0, 0, 1)
        with pytest.raises(ValueError):
            HuffmanCodec().decode(header + struct.pack("<Q", 0))

    def test_truncated_v1_stream_raises(self):
        with pytest.raises(ValueError):
            HuffmanCodec().decode(b"\x01\x02")

    def test_garbage_bytes_raise(self):
        codec = HuffmanCodec()
        for blob in [b"", b"\x00", b"nonsense stream", b"HUF2", b"HUF2" + b"\x00" * 4]:
            with pytest.raises(ValueError):
                codec.decode(blob)


class TestEntropyCodecHardening:
    @pytest.mark.parametrize("name,syms", list(_adversarial_arrays().items()))
    def test_roundtrip(self, name, syms):
        codec = EntropyCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)),
                                      np.asarray(syms).ravel())

    def test_roundtrip_without_huffman_stage(self):
        codec = EntropyCodec(use_huffman=False)
        syms = np.array([2**40, 1, 2**40, 3])
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_unknown_flag_raises(self):
        with pytest.raises(ValueError):
            EntropyCodec().decode(b"\x07abc")

    def test_corrupt_backend_payload_raises_value_error(self):
        with pytest.raises(ValueError):
            EntropyCodec().decode(b"\x01not-a-zlib-stream")

    def test_truncated_raw_header_raises(self):
        with pytest.raises(ValueError):
            EntropyCodec(use_huffman=False).decode(b"\x00\x01\x02")

    def test_raw_count_beyond_payload_raises(self):
        good = EntropyCodec(use_huffman=False).encode(np.arange(4))
        # Inflate the element count without growing the payload.
        forged = b"\x00" + np.uint64(50).tobytes() + good[9:]
        with pytest.raises(ValueError):
            EntropyCodec(use_huffman=False).decode(forged)

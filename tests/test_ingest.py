"""The durable write path: manifest atomicity, body parsers, IngestManager.

Covers ISSUE 7's ingest subsystem below the HTTP layer: the manifest's
atomic rewrite + replay contract, the upload-body parsers' corrupt-input
behaviour, and the stage → verify → atomic-publish → deferred-unlink
lifecycle of :class:`IngestManager` (including the startup sweep of crash
debris).
"""

from __future__ import annotations

import io
import json
import os
import threading
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.bounds import Rel
from repro.store import (
    ArchiveStore,
    IngestConflictError,
    IngestManager,
    IngestQuotaError,
    ManifestEntry,
    StoreManifest,
)
from repro.store.ingest import (
    limit_stream,
    read_chunked_stream,
    read_row_blocks,
    read_sized_stream,
)

CODEC = "szinterp"
BOUND = Rel(1e-3)


def _field(shape=(24, 16), seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).cumsum(axis=0)


def _blocks(arr, rows=5):
    for start in range(0, arr.shape[0], rows):
        yield arr[start:start + rows]


def _entry(key="k", **over):
    base = dict(path="archives/k.g000001.rpra", codec=CODEC, shape=[4, 4],
                dtype="float64", bound={"mode": "rel", "value": 1e-3},
                token="ab" * 32, nbytes=100, created=1.0, replaced=None,
                generation=1)
    base.update(over)
    return ManifestEntry(key, **base)


def _ingest(manager, key, arr, **kw):
    kw.setdefault("codec", CODEC)
    kw.setdefault("bound", BOUND)
    kw.setdefault("data_range", (float(arr.min()), float(arr.max())))
    return manager.ingest(key, _blocks(arr), **kw)


# ---------------------------------------------------------------------------
# StoreManifest
# ---------------------------------------------------------------------------

class TestStoreManifest:
    def test_roundtrip_through_restart(self, tmp_path):
        m = StoreManifest(tmp_path)
        m.put(_entry("temp"))
        m.set_auth("*", "s3cret")
        m2 = StoreManifest(tmp_path)  # fresh instance = restart
        assert m2.keys() == ["temp"]
        got = m2.get("temp")
        assert got.to_dict() == _entry("temp").to_dict()
        assert m2.auth_token("anything") == "s3cret"

    def test_per_key_token_beats_wildcard(self, tmp_path):
        m = StoreManifest(tmp_path)
        m.set_auth("*", "everyone")
        m.set_auth("temp", "special")
        assert m.auth_token("temp") == "special"
        assert m.auth_token("other") == "everyone"
        m.set_auth("temp", None)
        assert m.auth_token("temp") == "everyone"

    def test_delete_persists_and_returns_entry(self, tmp_path):
        m = StoreManifest(tmp_path)
        m.put(_entry("temp"))
        assert m.delete("temp").key == "temp"
        with pytest.raises(KeyError):
            m.delete("temp")
        assert StoreManifest(tmp_path).keys() == []

    def test_write_is_atomic_no_tmp_left(self, tmp_path):
        m = StoreManifest(tmp_path)
        for i in range(5):
            m.put(_entry(f"k{i}"))
        assert not list(tmp_path.glob("*.tmp"))
        # The live file is always complete, parseable JSON.
        doc = json.loads((tmp_path / "manifest.json").read_text())
        assert sorted(doc["entries"]) == [f"k{i}" for i in range(5)]

    @pytest.mark.parametrize("text", [
        "not json",
        '{"format": "something-else", "version": 1}',
        '{"format": "repro-store-manifest", "version": 99}',
        '{"format": "repro-store-manifest", "version": 1, "entries": []}',
        '{"format": "repro-store-manifest", "version": 1,'
        ' "entries": {"k": {"path": "a.rpra"}}}',
        '{"format": "repro-store-manifest", "version": 1,'
        ' "auth": {"k": 5}}',
    ])
    def test_malformed_manifest_raises_corrupt(self, tmp_path, text):
        (tmp_path / "manifest.json").write_text(text)
        with pytest.raises(ValueError, match="corrupt manifest"):
            StoreManifest(tmp_path)

    def test_byte_flipped_manifest_is_corrupt(self, tmp_path):
        m = StoreManifest(tmp_path)
        m.put(_entry("temp"))
        raw = bytearray((tmp_path / "manifest.json").read_bytes())
        raw[len(raw) // 2] ^= 0x97  # breaks UTF-8, not just JSON
        (tmp_path / "manifest.json").write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="corrupt manifest"):
            StoreManifest(tmp_path)

    @pytest.mark.parametrize("path", ["/etc/passwd", "../outside.rpra"])
    def test_entry_path_escaping_root_is_corrupt(self, tmp_path, path):
        entry = _entry("k").to_dict()
        entry["path"] = path
        doc = {"format": "repro-store-manifest", "version": 1,
               "auth": {}, "entries": {"k": entry}}
        (tmp_path / "manifest.json").write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="corrupt manifest"):
            StoreManifest(tmp_path)


# ---------------------------------------------------------------------------
# Body parsers
# ---------------------------------------------------------------------------

def _chunked(payload: bytes, chunk=7, trailers=b"") -> io.BytesIO:
    out = bytearray()
    for start in range(0, len(payload), chunk):
        piece = payload[start:start + chunk]
        out += f"{len(piece):x}\r\n".encode() + piece + b"\r\n"
    out += b"0\r\n" + trailers + b"\r\n"
    return io.BytesIO(bytes(out))


class TestBodyParsers:
    def test_sized_stream_exact(self):
        got = b"".join(read_sized_stream(io.BytesIO(b"abcdef"), 6, io_chunk=4))
        assert got == b"abcdef"

    def test_sized_stream_truncated_is_corrupt(self):
        with pytest.raises(ValueError, match="corrupt upload body"):
            list(read_sized_stream(io.BytesIO(b"abc"), 6))

    def test_chunked_stream_roundtrip(self):
        payload = bytes(range(256)) * 3
        got = b"".join(read_chunked_stream(_chunked(payload), io_chunk=11))
        assert got == payload

    def test_chunked_stream_with_trailers_and_extensions(self):
        body = io.BytesIO(b"5;ext=1\r\nhello\r\n0\r\nX-Sum: 1\r\n\r\n")
        assert b"".join(read_chunked_stream(body)) == b"hello"

    @pytest.mark.parametrize("raw", [
        b"zz\r\nhello\r\n0\r\n\r\n",          # non-hex size
        b"5\r\nhel",                          # truncated payload
        b"5\r\nhelloXX0\r\n\r\n",             # payload missing its CRLF
        b"5\r\nhello\r\n0\r\n",               # stream ends inside trailers
        b"5",                                 # size line never terminated
    ])
    def test_malformed_chunked_is_corrupt(self, raw):
        with pytest.raises(ValueError, match="corrupt chunked body"):
            list(read_chunked_stream(io.BytesIO(raw)))

    def test_row_blocks_regroup_bit_identical(self):
        arr = _field((10, 3, 4))
        raw = arr.astype(np.float64).tobytes()
        pieces = [raw[i:i + 37] for i in range(0, len(raw), 37)]
        blocks = list(read_row_blocks(pieces, (10, 3, 4), np.float64))
        assert all(b.shape[1:] == (3, 4) for b in blocks)
        assert np.array_equal(np.concatenate(blocks), arr)

    @pytest.mark.parametrize("shape,nbytes", [
        ((4, 4), 4 * 4 * 8 - 8),   # one row short
        ((4, 4), 4 * 4 * 8 + 8),   # one row long
        ((4, 4), 4 * 4 * 8 + 3),   # trailing partial row
    ])
    def test_row_blocks_wrong_length_is_corrupt(self, shape, nbytes):
        raw = b"\0" * nbytes
        with pytest.raises(ValueError, match="corrupt upload body"):
            list(read_row_blocks([raw], shape, np.float64))

    @pytest.mark.parametrize("shape", [(), (0, 4), (4, 0)])
    def test_row_blocks_degenerate_shape_is_corrupt(self, shape):
        with pytest.raises(ValueError, match="corrupt upload body"):
            list(read_row_blocks([b""], shape, np.float64))

    def test_limit_stream_raises_past_quota(self):
        with pytest.raises(IngestQuotaError):
            list(limit_stream([b"x" * 10, b"x" * 10], 15, "k"))
        assert b"".join(limit_stream([b"x" * 10], None, "k")) == b"x" * 10


# ---------------------------------------------------------------------------
# IngestManager
# ---------------------------------------------------------------------------

@pytest.fixture()
def manager(tmp_path):
    with ArchiveStore() as store:
        yield IngestManager(tmp_path / "root", store)


class TestIngestManager:
    def test_ingest_publishes_and_serves(self, manager):
        arr = _field()
        entry = _ingest(manager, "temp", arr)
        assert entry.generation == 1 and entry.replaced is None
        path = manager.root / entry.path
        assert path.is_file() and not list(manager.root.rglob("*.tmp"))
        region = (slice(2, 9), slice(0, 5))
        got = manager.store.read_region("temp", region)
        assert np.array_equal(got, repro.read_region(path, region))
        err = np.max(np.abs(manager.store.read_region(
            "temp", tuple(slice(0, s) for s in arr.shape)) - arr))
        assert err <= 1e-3 * (arr.max() - arr.min()) + 1e-12

    def test_replace_bumps_generation_and_unlinks_old(self, manager):
        e1 = _ingest(manager, "temp", _field(seed=1))
        e2 = _ingest(manager, "temp", _field(seed=2))
        assert e2.generation == 2 and e2.created == e1.created
        assert e2.replaced is not None and e2.path != e1.path
        # No reader held the old archive, so its file is already gone.
        assert not (manager.root / e1.path).exists()
        assert (manager.root / e2.path).is_file()

    def test_replace_defers_unlink_until_readers_drain(self, manager):
        arr = _field()
        e1 = _ingest(manager, "temp", arr)
        old_path = manager.root / e1.path
        want_old = repro.read_region(old_path, (slice(0, 4), slice(0, 4)))

        # Pin the live entry the way an in-flight read does, then replace.
        entry = manager.store._entry("temp")
        try:
            _ingest(manager, "temp", _field(seed=3))
            assert old_path.exists(), "old archive unlinked under a pin"
            # The pinned reader still sees the *old* bytes, never a mix.
            raw = entry.handle.read_at(0, 8)
            assert raw == old_path.read_bytes()[:8]
            got_old = np.frombuffer(
                old_path.read_bytes(), dtype=np.uint8)  # file intact
            assert got_old.size > 0 and want_old.size > 0
        finally:
            entry.unpin()
        assert not old_path.exists(), "drained pin did not release the file"

    def test_conflict_on_same_key_in_flight(self, manager):
        started, release = threading.Event(), threading.Event()

        def slow_blocks():
            yield _field((8, 8))
            started.set()
            release.wait(timeout=30)
            yield _field((8, 8), seed=1) * 0 + 1.0

        errs = []

        def worker():
            try:
                manager.ingest("temp", slow_blocks(), codec=CODEC,
                               bound=BOUND, data_range=(-50.0, 50.0))
            except Exception as exc:  # pragma: no cover - must not happen
                errs.append(exc)

        t = threading.Thread(target=worker)
        t.start()
        assert started.wait(timeout=30)
        try:
            with pytest.raises(IngestConflictError):
                _ingest(manager, "temp", _field())
            # A different key is not blocked by temp's in-flight ingest.
            _ingest(manager, "other", _field(seed=4))
        finally:
            release.set()
            t.join(timeout=30)
        assert not errs and manager.manifest.get("temp").generation == 1

    def test_quota_enforced_mid_stream(self, tmp_path):
        with ArchiveStore() as store:
            small = IngestManager(tmp_path / "root", store, quota_bytes=256)
            from repro.store.ingest import limit_stream, read_row_blocks
            arr = _field((16, 16))
            raw = arr.astype(np.float64).tobytes()
            pieces = [raw[i:i + 128] for i in range(0, len(raw), 128)]
            blocks = read_row_blocks(
                limit_stream(pieces, small.quota_bytes, "temp"),
                arr.shape, np.float64)
            with pytest.raises(IngestQuotaError):
                small.ingest("temp", blocks, codec=CODEC, bound=BOUND,
                             data_range=(float(arr.min()), float(arr.max())))
            # Nothing published, nothing staged.
            assert small.manifest.keys() == []
            assert not list(small.root.rglob("*.tmp"))

    @pytest.mark.parametrize("key", ["", "a/b", 7])
    def test_bad_keys_rejected(self, manager, key):
        with pytest.raises(ValueError):
            manager.ingest(key, iter([]), codec=CODEC, bound=BOUND)

    def test_model_requiring_codec_rejected(self, manager):
        with pytest.raises(ValueError, match="model"):
            _ingest(manager, "temp", _field(), codec="aesz")

    def test_delete_removes_everywhere(self, manager):
        entry = _ingest(manager, "temp", _field())
        path = manager.root / entry.path
        manager.delete("temp")
        assert manager.manifest.get("temp") is None
        assert "temp" not in manager.store.keys()
        assert not path.exists()
        with pytest.raises(KeyError):
            manager.delete("temp")

    def test_replay_restores_keys(self, tmp_path):
        root = tmp_path / "root"
        with ArchiveStore() as store:
            m1 = IngestManager(root, store)
            _ingest(m1, "a", _field(seed=1))
            _ingest(m1, "b", _field(seed=2))
        with ArchiveStore() as store:
            m2 = IngestManager(root, store)
            assert m2.sweep() == []
            assert m2.replay() == []
            assert sorted(store.keys()) == ["a", "b"]
            region = (slice(1, 7), slice(2, 9))
            want = repro.read_region(root / m2.manifest.get("a").path, region)
            assert np.array_equal(store.read_region("a", region), want)

    def test_replay_skips_missing_archive_serves_rest(self, tmp_path):
        root = tmp_path / "root"
        with ArchiveStore() as store:
            m1 = IngestManager(root, store)
            _ingest(m1, "good", _field(seed=1))
            bad = _ingest(m1, "bad", _field(seed=2))
        (root / bad.path).unlink()
        with ArchiveStore() as store:
            m2 = IngestManager(root, store)
            skipped = m2.replay()
            assert [k for k, _ in skipped] == ["bad"]
            assert store.keys() == ("good",)

    def test_sweep_removes_stale_tmp_and_orphans(self, tmp_path):
        """Satellite: startup sweep clears crash debris of every kind."""
        root = tmp_path / "root"
        with ArchiveStore() as store:
            m = IngestManager(root, store)
            entry = _ingest(m, "keep", _field())
            # Crash debris: a staged archive, a torn manifest rewrite, and a
            # published-but-never-recorded archive file.
            stale1 = m.manifest.archive_dir / "keep-xx.g000009.rpra.tmp"
            stale1.write_bytes(b"partial")
            stale2 = root / "manifest.json.tmp"
            stale2.write_bytes(b"{torn")
            orphan = m.manifest.archive_dir / "orphan-ff.g000001.rpra"
            orphan.write_bytes(b"unreferenced")
            removed = m.sweep()
            assert sorted(removed) == sorted([stale1, stale2, orphan])
            assert not stale1.exists() and not stale2.exists()
            assert not orphan.exists()
            assert (root / entry.path).is_file(), "sweep ate a live archive"
            # Idempotent, and the key still serves.
            assert m.sweep() == []
            assert m.manifest.keys() == ["keep"]

    def test_verify_failure_never_publishes(self, manager, monkeypatch):
        from repro.store import ingest as ingest_mod

        def bad_verify(path):
            raise ingest_mod.IngestVerifyError("staged archive failed "
                                               "verification: induced")

        monkeypatch.setattr(ingest_mod.IngestManager, "_verify_archive",
                            staticmethod(bad_verify))
        with pytest.raises(ingest_mod.IngestVerifyError):
            _ingest(manager, "temp", _field())
        assert manager.manifest.keys() == []
        assert "temp" not in manager.store.keys()
        assert not list(manager.root.rglob("*.tmp"))
        assert not any(manager.manifest.archive_dir.iterdir())

"""The writable HTTP store node: POST/DELETE routes, auth, metrics, e2e.

Acceptance (ISSUE 7): ``repro serve --root DIR --writable`` accepts a
``repro push``, serves the pushed field bit-identically to a local
``repro.read_region`` of the published archive, survives a restart with the
key intact (manifest replay), and never serves a byte-mix of two archives
while a key is replaced under concurrent readers.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from http.client import HTTPConnection
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.store import ArchiveStore, IngestManager, PushError, push_field
from repro.store.client import delete_key

SRC = Path(__file__).resolve().parents[1] / "src"
CODEC = "szinterp"
SHAPE = (40, 32)


def _field(seed=0, shape=SHAPE):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).cumsum(axis=0)


@pytest.fixture()
def writable(tmp_path):
    """A writable in-process server: (url, manager, store, root)."""
    import repro.store.server as server_mod

    store = ArchiveStore()
    manager = IngestManager(tmp_path / "root", store, quota_bytes=1 << 20)
    srv = server_mod.make_server(store, ingest=manager)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv.url, manager, store
    finally:
        srv.shutdown()
        srv.server_close()
        store.close()
        thread.join(timeout=10)


def _fetch_region(base, key, spec):
    with urllib.request.urlopen(f"{base}/v1/{key}/region?r={spec}",
                                timeout=30) as resp:
        shape = tuple(int(s) for s in resp.headers["X-Repro-Shape"].split(","))
        dtype = np.dtype(resp.headers["X-Repro-Dtype"])
        return np.frombuffer(resp.read(), dtype=dtype).reshape(shape)


def _get_json(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _raw_post(base, key, body=b"", headers=None, chunked_body=None):
    """POST with full header control; returns (status, parsed JSON body)."""
    host = base.split("//", 1)[1]
    conn = HTTPConnection(host, timeout=30)
    try:
        if chunked_body is not None:
            conn.request("POST", f"/v1/{key}", body=iter(chunked_body),
                         headers=headers or {}, encode_chunked=True)
        else:
            conn.request("POST", f"/v1/{key}", body=body,
                         headers=headers or {})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def _std_headers(arr, **over):
    headers = {
        "X-Repro-Shape": ",".join(str(s) for s in arr.shape),
        "X-Repro-Dtype": str(arr.dtype),
        "X-Repro-Bound": "1e-3",
        "X-Repro-Codec": CODEC,
        "X-Repro-Data-Range": f"{float(arr.min())!r},{float(arr.max())!r}",
    }
    headers.update(over)
    return {k: v for k, v in headers.items() if v is not None}


class TestIngestRoutes:
    def test_push_then_read_bit_identical(self, writable):
        url, manager, store = writable
        arr = _field()
        payload = push_field(url, "temp", arr, bound=1e-3, codec=CODEC)
        assert payload["status"] == 201 and payload["created"] is True
        assert payload["generation"] == 1

        # Served bytes == one-shot read of the published archive file.
        entry = manager.manifest.get("temp")
        got = _fetch_region(url, "temp", "5:20,0:16")
        want = repro.read_region(manager.root / entry.path,
                                 (slice(5, 20), slice(0, 16)))
        assert np.array_equal(got, want)

        # Replace: 200, generation bumps, new bytes served.
        arr2 = _field(seed=1)
        payload2 = push_field(url, "temp", arr2, bound=1e-3, codec=CODEC)
        assert payload2["status"] == 200 and payload2["created"] is False
        assert payload2["generation"] == 2
        entry2 = manager.manifest.get("temp")
        got2 = _fetch_region(url, "temp", "5:20,0:16")
        assert np.array_equal(got2, repro.read_region(
            manager.root / entry2.path, (slice(5, 20), slice(0, 16))))
        assert not np.array_equal(got2, got)

    def test_sized_upload_equivalent_to_chunked(self, writable):
        url, manager, _ = writable
        arr = _field(seed=2)
        status, payload = _raw_post(url, "sized", body=arr.tobytes(),
                                    headers=_std_headers(arr))
        assert status == 201
        assert payload["shape"] == list(arr.shape)
        got = _fetch_region(url, "sized", "0:40,0:32")
        err = np.max(np.abs(got - arr))
        assert err <= 1e-3 * (arr.max() - arr.min()) + 1e-12

    def test_read_only_server_answers_405(self, tmp_path):
        import repro.store.server as server_mod

        store = ArchiveStore()
        srv = server_mod.make_server(store)  # no ingest manager
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            arr = _field()
            with pytest.raises(PushError) as exc:
                push_field(srv.url, "temp", arr, bound=1e-3, codec=CODEC)
            assert exc.value.status == 405
            with pytest.raises(PushError) as exc:
                delete_key(srv.url, "temp")
            assert exc.value.status == 405
        finally:
            srv.shutdown()
            srv.server_close()
            store.close()
            thread.join(timeout=10)

    def test_auth_enforced_on_mutations_not_reads(self, writable):
        url, manager, _ = writable
        arr = _field()
        push_field(url, "temp", arr, bound=1e-3, codec=CODEC)
        manager.manifest.set_auth("*", "s3cret")

        with pytest.raises(PushError) as exc:
            push_field(url, "temp", arr, bound=1e-3, codec=CODEC)
        assert exc.value.status == 401
        with pytest.raises(PushError) as exc:
            push_field(url, "temp", arr, bound=1e-3, codec=CODEC,
                       token="wrong")
        assert exc.value.status == 401
        with pytest.raises(PushError) as exc:
            delete_key(url, "temp")
        assert exc.value.status == 401

        # Reads stay open; the right token mutates.
        assert _fetch_region(url, "temp", "0:4,0:4").shape == (4, 4)
        payload = push_field(url, "temp", arr, bound=1e-3, codec=CODEC,
                             token="s3cret")
        assert payload["generation"] == 2
        assert delete_key(url, "temp", token="s3cret")["deleted"] == "temp"

    def test_per_key_token_beats_wildcard(self, writable):
        url, manager, _ = writable
        manager.manifest.set_auth("*", "everyone")
        manager.manifest.set_auth("special", "only-this")
        arr = _field()
        with pytest.raises(PushError) as exc:
            push_field(url, "special", arr, bound=1e-3, codec=CODEC,
                       token="everyone")
        assert exc.value.status == 401
        assert push_field(url, "special", arr, bound=1e-3, codec=CODEC,
                          token="only-this")["status"] == 201

    @pytest.mark.parametrize("mutate,code", [
        (lambda h: {k: v for k, v in h.items() if k != "X-Repro-Shape"}, 400),
        (lambda h: {**h, "X-Repro-Shape": "40,nope"}, 400),
        (lambda h: {**h, "X-Repro-Shape": "40,-3"}, 400),
        (lambda h: {**h, "X-Repro-Dtype": "float999"}, 400),
        (lambda h: {**h, "X-Repro-Bound-Mode": "bogus"}, 400),
        (lambda h: {**h, "X-Repro-Codec": "no-such-codec"}, 400),
        (lambda h: {k: v for k, v in h.items()
                    if k != "X-Repro-Data-Range"}, 400),  # rel needs a range
    ])
    def test_bad_upload_params_400(self, writable, mutate, code):
        url, _, _ = writable
        arr = _field()
        status, payload = _raw_post(url, "temp", body=arr.tobytes(),
                                    headers=mutate(_std_headers(arr)))
        assert status == code and "error" in payload

    def test_wrong_body_length_400(self, writable):
        url, manager, _ = writable
        arr = _field()
        status, payload = _raw_post(url, "temp", body=arr.tobytes()[:-8],
                                    headers=_std_headers(arr))
        assert status == 400 and "corrupt" in payload["error"]
        assert manager.manifest.keys() == []  # nothing half-published

    def test_missing_length_411(self, writable):
        url, _, _ = writable
        arr = _field()
        host = url.split("//", 1)[1]
        conn = HTTPConnection(host, timeout=30)
        try:
            conn.putrequest("POST", "/v1/temp")
            for name, value in _std_headers(arr).items():
                conn.putheader(name, value)
            conn.endheaders()  # no body, no Content-Length, no chunking
            resp = conn.getresponse()
            assert resp.status == 411
        finally:
            conn.close()

    def test_quota_precheck_and_midstream_413(self, writable):
        url, manager, _ = writable
        big = np.zeros((manager.quota_bytes // (32 * 8) + 8, 32))
        # Content-Length framing: rejected up front from the declared size.
        status, payload = _raw_post(
            url, "big", body=b"",
            headers={**_std_headers(big),
                     "Content-Length": str(big.nbytes)})
        assert status == 413 and "quota" in payload["error"]
        # Chunked framing: no declared size, tripped mid-stream.
        pieces = [bytes(big[i:i + 8]) for i in range(0, big.shape[0], 8)]
        status, payload = _raw_post(url, "big", chunked_body=pieces,
                                    headers=_std_headers(big))
        assert status == 413 and "quota" in payload["error"]
        assert manager.manifest.keys() == []

    def test_concurrent_same_key_ingest_409(self, writable):
        url, _, _ = writable
        arr = _field()
        raw = arr.tobytes()
        started, release = threading.Event(), threading.Event()
        slow_result = {}

        def slow_pieces():
            yield raw[:320]
            started.set()
            release.wait(timeout=30)
            yield raw[320:]

        def slow_push():
            slow_result["resp"] = _raw_post(url, "temp",
                                            chunked_body=slow_pieces(),
                                            headers=_std_headers(arr))

        t = threading.Thread(target=slow_push)
        t.start()
        assert started.wait(timeout=30)
        try:
            status, payload = _raw_post(url, "temp", body=raw,
                                        headers=_std_headers(arr))
            assert status == 409 and "in progress" in payload["error"]
        finally:
            release.set()
            t.join(timeout=30)
        assert slow_result["resp"][0] == 201  # the slow one still lands

    def test_delete_then_404(self, writable):
        url, manager, _ = writable
        arr = _field()
        push_field(url, "temp", arr, bound=1e-3, codec=CODEC)
        path = manager.root / manager.manifest.get("temp").path
        assert delete_key(url, "temp") == {"deleted": "temp", "generation": 1,
                                           "status": 200}
        assert not path.exists()
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{url}/v1/temp/region?r=0:4,0:4")
        assert exc.value.code == 404
        with pytest.raises(PushError) as exc2:
            delete_key(url, "temp")
        assert exc2.value.status == 404

    def test_metrics_counts_routes_and_cache(self, writable):
        url, _, _ = writable
        arr = _field()
        push_field(url, "temp", arr, bound=1e-3, codec=CODEC)
        _fetch_region(url, "temp", "0:8,0:8")
        _fetch_region(url, "temp", "0:8,0:8")  # warm: second read hits cache
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"{url}/v1/absent/region?r=0:4,0:4")

        status, m = _get_json(f"{url}/metrics")
        assert status == 200 and m["writable"] is True
        assert m["archives"] == 1
        assert m["routes"]["ingest"]["requests"] == 1
        assert m["routes"]["ingest"]["errors"] == 0
        assert m["routes"]["region"]["requests"] == 3
        assert m["routes"]["region"]["errors"] == 1
        assert m["routes"]["region"]["seconds"] >= 0.0
        assert m["cache"]["hits"] >= 1 and m["cache"]["loads"] >= 1
        assert m["tile_decodes"] >= 1 and m["region_reads"] >= 2
        # The /metrics scrape itself is counted once it responds.
        status, m2 = _get_json(f"{url}/metrics")
        assert m2["routes"]["metrics"]["requests"] >= 1


class TestReplaceUnderReaders:
    def test_hammer_never_serves_a_mix(self, writable):
        """Satellite: every response is bit-identical to exactly one archive."""
        url, manager, _ = writable
        region, spec = (slice(0, 40), slice(0, 32)), "0:40,0:32"
        fields = [_field(seed=10), _field(seed=11)]
        push_field(url, "temp", fields[0], bound=1e-3, codec=CODEC)

        # The only archives that will ever exist: generations of these two
        # fields.  Collect each generation's exact decoded bytes.
        legal = []
        for f in fields:
            with ArchiveStore() as solo:
                m = IngestManager(manager.root.parent / f"ref{len(legal)}",
                                  solo)
                e = m.ingest("temp", iter([f]), codec=CODEC, bound=1e-3,
                             data_range=(float(f.min()), float(f.max())))
                legal.append(repro.read_region(m.root / e.path, region)
                             .tobytes())
        assert legal[0] != legal[1]

        stop = threading.Event()
        bad, reads = [], [0]

        def reader():
            while not stop.is_set():
                got = _fetch_region(url, "temp", spec).tobytes()
                reads[0] += 1
                if got not in legal:
                    bad.append(got)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for i in range(1, 9):  # 8 replacements under fire
                push_field(url, "temp", fields[i % 2], bound=1e-3,
                           codec=CODEC)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)
        assert not bad, "a response matched neither the old nor new archive"
        assert reads[0] >= 8, f"hammer made only {reads[0]} reads"
        assert manager.manifest.get("temp").generation == 9
        # Replaced generations' files are gone once readers drained.
        archives = list(manager.manifest.archive_dir.glob("*.rpra"))
        assert len(archives) == 1


class TestCliEndToEnd:
    def _spawn_serve(self, root, *extra):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--root", str(root),
             "--port", "0", *extra],
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        for line in proc.stdout:
            if line.startswith("serving "):
                return proc, line.split(" on ", 1)[1].split()[0]
        raise AssertionError(f"serve never came up: {proc.stderr.read()}")

    def _stop(self, proc):
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover - cleanup only
            proc.kill()
            proc.wait(timeout=15)

    def test_push_read_restart_cycle(self, tmp_path):
        """ISSUE 7 acceptance: push -> bit-identical read -> restart -> read."""
        root = tmp_path / "root"
        arr = _field(seed=7)
        npy = tmp_path / "field.npy"
        np.save(npy, arr)

        proc, url = self._spawn_serve(root, "--writable")
        try:
            push = subprocess.run(
                [sys.executable, "-m", "repro", "push", url, "temp",
                 str(npy), "--mode", "rel", "--bound", "1e-3",
                 "--codec", CODEC],
                env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
                capture_output=True, text=True, timeout=120)
            assert push.returncode == 0, push.stderr
            assert "created generation 1" in push.stdout

            got = _fetch_region(url, "temp", "3:17,2:30")
            doc = json.loads((root / "manifest.json").read_text())
            path = root / doc["entries"]["temp"]["path"]
            want = repro.read_region(path, (slice(3, 17), slice(2, 30)))
            assert np.array_equal(got, want)
        finally:
            self._stop(proc)

        # Restart (read-only this time): the manifest replays the key.
        proc, url2 = self._spawn_serve(root)
        try:
            got2 = _fetch_region(url2, "temp", "3:17,2:30")
            assert np.array_equal(got2, want)
            # Read-only restart refuses mutation.
            with pytest.raises(PushError) as exc:
                push_field(url2, "temp", arr, bound=1e-3, codec=CODEC)
            assert exc.value.status == 405
        finally:
            self._stop(proc)

    def test_serve_flag_validation(self, tmp_path):
        env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}
        for argv in (["--writable"], ["--auth-token", "x"], []):
            r = subprocess.run(
                [sys.executable, "-m", "repro", "serve", *argv],
                env=env, capture_output=True, text=True, timeout=60)
            assert r.returncode != 0 and "--root" in r.stderr + r.stdout

    def test_cli_push_delete_roundtrip(self, tmp_path):
        root = tmp_path / "root"
        arr = _field(seed=8)
        npy = tmp_path / "field.npy"
        np.save(npy, arr)
        env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}
        proc, url = self._spawn_serve(root, "--writable",
                                      "--auth-token", "hunter2")
        try:
            denied = subprocess.run(
                [sys.executable, "-m", "repro", "push", url, "temp",
                 str(npy)], env=env, capture_output=True, text=True,
                timeout=120)
            assert denied.returncode != 0 and "401" in denied.stderr
            ok = subprocess.run(
                [sys.executable, "-m", "repro", "push", url, "temp",
                 str(npy), "--token", "hunter2"],
                env=env, capture_output=True, text=True, timeout=120)
            assert ok.returncode == 0, ok.stderr
            gone = subprocess.run(
                [sys.executable, "-m", "repro", "push", url, "temp",
                 "--delete", "--token", "hunter2"],
                env=env, capture_output=True, text=True, timeout=120)
            assert gone.returncode == 0 and "deleted" in gone.stdout
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(f"{url}/v1/temp/region?r=0:4,0:4")
            assert exc.value.code == 404
        finally:
            self._stop(proc)

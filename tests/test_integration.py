"""End-to-end integration tests crossing module boundaries.

These tests exercise the same paths the benchmark harness uses: train an
autoencoder on training snapshots of a synthetic field, compress unseen test
snapshots, compare against the baseline compressors and check the qualitative
relationships the paper reports.
"""

import numpy as np
import pytest

from repro import (
    AESZCompressor,
    AESZConfig,
    SZ21Compressor,
    SZAutoCompressor,
    ZFPCompressor,
    psnr,
    verify_error_bound,
)
from repro.autoencoders import AutoencoderConfig, SlicedWassersteinAutoencoder
from repro.compressors import LosslessCompressor, SZInterpCompressor
from repro.data import train_test_snapshots
from repro.metrics import rate_distortion_sweep
from repro.nn import TrainingConfig


class TestTrainOnTrainCompressOnTest:
    """The paper's protocol: the model never sees the data it compresses."""

    def test_model_generalizes_to_unseen_snapshot(self, trained_aesz_2d):
        _, test = train_test_snapshots("CESM-CLDHGH", shape=(64, 96), test_limit=1)
        data = test[0].astype(np.float64)
        recon = trained_aesz_2d.decompress(trained_aesz_2d.compress(data, 1e-2))
        assert verify_error_bound(data, recon, 1e-2) is None
        assert psnr(data, recon) > 35.0

    def test_same_model_reused_across_snapshots(self, trained_aesz_2d):
        _, test = train_test_snapshots("CESM-CLDHGH", shape=(64, 96), test_limit=2)
        sizes = []
        for snap in test:
            payload = trained_aesz_2d.compress(snap.astype(np.float64), 1e-2)
            recon = trained_aesz_2d.decompress(payload)
            assert verify_error_bound(snap, recon, 1e-2) is None
            sizes.append(len(payload))
        assert len(sizes) == 2


class TestCrossCompressorRelationships:
    @pytest.fixture(scope="class")
    def test_field(self):
        _, test = train_test_snapshots("CESM-CLDHGH", shape=(64, 96), test_limit=1)
        return test[0].astype(np.float64)

    def test_every_error_bounded_compressor_respects_bound(self, trained_aesz_2d, test_field):
        compressors = [trained_aesz_2d, SZ21Compressor(), ZFPCompressor(),
                       SZAutoCompressor(), SZInterpCompressor()]
        for comp in compressors:
            recon = comp.decompress(comp.compress(test_field, 5e-3))
            assert verify_error_bound(test_field, recon, 5e-3) is None, comp.name

    def test_lossy_beats_lossless_ratio(self, test_field):
        lossless = LosslessCompressor().roundtrip(test_field.astype(np.float32), 0.0)
        lossy = SZ21Compressor().roundtrip(test_field, 1e-3)
        assert lossy.compression_ratio > lossless.compression_ratio

    def test_aesz_competitive_with_sz21_at_high_ratio(self, trained_aesz_2d, test_field):
        """The paper's headline regime: at a large error bound (low bit rate),
        AE-SZ should be at least roughly competitive with SZ2.1."""
        eb = 2e-2
        aesz_size = len(trained_aesz_2d.compress(test_field, eb))
        sz_size = len(SZ21Compressor().compress(test_field, eb))
        assert aesz_size < 3.0 * sz_size

    def test_rate_distortion_sweep_is_monotone(self, trained_aesz_2d, test_field):
        curve = rate_distortion_sweep(trained_aesz_2d, test_field, [2e-2, 5e-3, 1e-3])
        psnrs = curve.psnrs()
        bit_rates = curve.bit_rates()
        assert np.all(np.diff(psnrs) > 0)
        assert np.all(np.diff(bit_rates) > 0)


class TestThreeDimensionalPipeline:
    def test_3d_end_to_end_with_baselines(self, trained_aesz_3d):
        _, test = train_test_snapshots("NYX-baryon_density", shape=(24, 24, 24), test_limit=1)
        data = test[0].astype(np.float64)
        for comp in [trained_aesz_3d, SZAutoCompressor(), SZInterpCompressor()]:
            recon = comp.decompress(comp.compress(data, 1e-2))
            assert verify_error_bound(data, recon, 1e-2) is None


class TestModelPersistenceAcrossProcessBoundary:
    def test_saved_model_gives_identical_streams(self, trained_aesz_2d, tmp_path, field_2d):
        path = tmp_path / "swae.npz"
        trained_aesz_2d.autoencoder.save(path)

        config = trained_aesz_2d.autoencoder.config
        fresh_ae = SlicedWassersteinAutoencoder(
            AutoencoderConfig(ndim=config.ndim, block_size=config.block_size,
                              latent_size=config.latent_size, channels=config.channels,
                              seed=config.seed))
        fresh_ae.load(path)
        fresh_comp = AESZCompressor(fresh_ae, AESZConfig(block_size=config.block_size))

        original = trained_aesz_2d.compress(field_2d, 1e-3)
        reloaded = fresh_comp.compress(field_2d, 1e-3)
        assert original == reloaded
        np.testing.assert_array_equal(trained_aesz_2d.decompress(original),
                                      fresh_comp.decompress(reloaded))

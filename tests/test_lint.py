"""Every lint rule catches its violating fixture (right code, right line),
passes its clean twin, and the shipped tree lints clean."""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import Diagnostic, lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parents[1]


def codes(diags):
    return [d.code for d in diags]


def one(diags, code):
    matching = [d for d in diags if d.code == code]
    assert len(matching) == 1, f"expected exactly one {code}, got {diags}"
    return matching[0]


# ---------------------------------------------------------------------------
# RPR001 — guarded-by lock discipline
# ---------------------------------------------------------------------------

class TestGuardedBy:
    def test_unlocked_attribute_access_is_flagged(self):
        source = textwrap.dedent("""\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded by: self._lock

                def bad(self):
                    return len(self._items)
            """)
        diag = one(lint_source(source), "RPR001")
        assert diag.line == 9
        assert "self._items" in diag.message and "self._lock" in diag.message

    def test_with_block_and_docstring_declaration_pass(self):
        source = textwrap.dedent("""\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded by: self._lock

                def locked(self):
                    with self._lock:
                        return len(self._items)

                def blessed(self):
                    \"\"\"Must hold ``self._lock``.\"\"\"
                    return len(self._items)
            """)
        assert lint_source(source) == []

    def test_init_is_exempt(self):
        source = textwrap.dedent("""\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded by: self._lock
                    self._items.append(1)
            """)
        assert lint_source(source) == []

    def test_nested_function_does_not_inherit_the_lock(self):
        source = textwrap.dedent("""\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded by: self._lock

                def spawn(self):
                    with self._lock:
                        def later():
                            return self._items
                        return later
            """)
        diag = one(lint_source(source), "RPR001")
        assert diag.line == 11

    def test_module_global_guard(self):
        source = textwrap.dedent("""\
            import threading

            _LOCK = threading.Lock()
            _TABLE = {}  # guarded by: _LOCK

            def bad():
                return _TABLE.get("x")

            def good():
                with _LOCK:
                    return _TABLE.get("x")
            """)
        diag = one(lint_source(source), "RPR001")
        assert diag.line == 7 and "_TABLE" in diag.message


# ---------------------------------------------------------------------------
# RPR002 — corrupt-input convention in parsing modules
# ---------------------------------------------------------------------------

PARSER_PATH = "src/repro/encoding/container.py"


class TestCorruptConvention:
    def test_escaping_struct_error_is_flagged(self):
        source = textwrap.dedent("""\
            import struct

            def parse_front(data):
                try:
                    return struct.unpack("<I", data[:4])
                except struct.error:
                    raise RuntimeError("bad")
            """)
        diag = one(lint_source(source, PARSER_PATH), "RPR002")
        assert diag.line == 6 and "struct.error" in diag.message

    def test_corrupt_valueerror_reraise_passes(self):
        source = textwrap.dedent("""\
            import struct

            def parse_front(data):
                try:
                    return struct.unpack("<I", data[:4])
                except (struct.error, KeyError) as exc:
                    raise ValueError(f"corrupt archive: {exc}") from None
            """)
        assert lint_source(source, PARSER_PATH) == []

    def test_rule_is_scoped_to_parsing_modules(self):
        source = textwrap.dedent("""\
            def parse_x(data):
                try:
                    return data[0]
                except KeyError:
                    return None
            """)
        assert codes(lint_source(source, "src/repro/cli.py")) == []
        assert codes(lint_source(source, PARSER_PATH)) == ["RPR002"]

    def test_non_parser_functions_are_not_constrained(self):
        source = textwrap.dedent("""\
            def helper(data):
                try:
                    return data[0]
                except KeyError:
                    return None
            """)
        assert lint_source(source, PARSER_PATH) == []


# ---------------------------------------------------------------------------
# RPR003 — bare except / silent except Exception
# ---------------------------------------------------------------------------

class TestExcepts:
    def test_bare_except(self):
        source = textwrap.dedent("""\
            def f():
                try:
                    return 1
                except:
                    return 2
            """)
        diag = one(lint_source(source), "RPR003")
        assert diag.line == 4

    def test_silent_except_exception(self):
        source = textwrap.dedent("""\
            def f():
                try:
                    return 1
                except Exception:
                    pass
            """)
        diag = one(lint_source(source), "RPR003")
        assert diag.line == 4

    def test_handled_broad_except_passes(self):
        source = textwrap.dedent("""\
            def f(log):
                try:
                    return 1
                except Exception as exc:
                    log.append(exc)
            """)
        assert lint_source(source) == []


# ---------------------------------------------------------------------------
# RPR004 — mutable default arguments
# ---------------------------------------------------------------------------

class TestMutableDefaults:
    def test_list_literal_default(self):
        diag = one(lint_source("def f(x=[]):\n    return x\n"), "RPR004")
        assert diag.line == 1 and "f()" in diag.message

    def test_dict_call_and_kwonly_defaults(self):
        source = "def f(*, table=dict()):\n    return table\n"
        assert codes(lint_source(source)) == ["RPR004"]

    def test_none_default_passes(self):
        assert lint_source("def f(x=None, y=(), z='s'):\n    return x\n") == []


# ---------------------------------------------------------------------------
# RPR005 — compressor registration
# ---------------------------------------------------------------------------

COMPRESSOR_PATH = "src/repro/compressors/fake.py"


class TestRegistryCompleteness:
    def test_unregistered_subclass_is_flagged(self):
        source = textwrap.dedent("""\
            from repro.compressors.base import Compressor

            class FakeCompressor(Compressor):
                pass
            """)
        diag = one(lint_source(source, COMPRESSOR_PATH), "RPR005")
        assert diag.line == 3 and "FakeCompressor" in diag.message

    def test_decorated_subclass_passes(self):
        source = textwrap.dedent("""\
            from repro.compressors.base import Compressor
            from repro.registry import register_compressor

            @register_compressor("fake")
            class FakeCompressor(Compressor):
                pass
            """)
        assert lint_source(source, COMPRESSOR_PATH) == []

    def test_module_level_call_with_cls_passes(self):
        source = textwrap.dedent("""\
            from repro.compressors.base import Compressor
            from repro.registry import register_compressor

            class FakeCompressor(Compressor):
                pass

            def _make(**opts):
                return FakeCompressor()

            register_compressor("fake", _make, cls=FakeCompressor)
            """)
        assert lint_source(source, COMPRESSOR_PATH) == []

    def test_abstract_and_private_intermediates_are_exempt(self):
        source = textwrap.dedent("""\
            import abc
            from repro.compressors.base import Compressor

            class _SharedCompressor(Compressor):
                pass

            class AbstractCompressor(Compressor, abc.ABC):
                pass
            """)
        assert lint_source(source, COMPRESSOR_PATH) == []

    def test_rule_is_scoped_to_compressors_dir(self):
        source = "class FooCompressor(Compressor):\n    pass\n"
        assert lint_source(source, "src/repro/core/aesz.py") == []


# ---------------------------------------------------------------------------
# RPR006 — import hygiene (project rule, needs a real tree)
# ---------------------------------------------------------------------------

def _write_tree(root: Path, files: dict) -> Path:
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return root


class TestImportHygiene:
    def test_reachable_top_level_http_import_is_flagged(self, tmp_path):
        _write_tree(tmp_path, {
            "mypkg/__init__.py": "from mypkg import web\n",
            "mypkg/registry.py": "",
            "mypkg/api.py": "",
            "mypkg/web.py": "import http.server\n",
        })
        diags = lint_paths([tmp_path])
        diag = one(diags, "RPR006")
        assert diag.line == 1
        assert diag.path.endswith("web.py") and "http.server" in diag.message

    def test_lazy_and_unreachable_imports_pass(self, tmp_path):
        _write_tree(tmp_path, {
            "mypkg/__init__.py": "from mypkg import core\n",
            "mypkg/registry.py": "",
            "mypkg/api.py": "",
            "mypkg/core.py": """\
                def serve():
                    import http.server
                    return http.server
            """,
            # web.py imports http.server at top level but nothing reachable
            # imports web (the lazy-__getattr__ pattern repro.store uses).
            "mypkg/web.py": "import socketserver\n",
        })
        assert codes(lint_paths([tmp_path])) == []

    def test_from_http_import_server_is_caught(self, tmp_path):
        _write_tree(tmp_path, {
            "mypkg/__init__.py": "from mypkg.web import helper\n",
            "mypkg/registry.py": "",
            "mypkg/api.py": "",
            "mypkg/web.py": "from http import server\n\ndef helper():\n    return server\n",
        })
        assert codes(lint_paths([tmp_path])) == ["RPR006"]


# ---------------------------------------------------------------------------
# RPR007 — __all__ is documented (project rule)
# ---------------------------------------------------------------------------

class TestAllDocumented:
    def _tree(self, tmp_path, docs_text):
        return _write_tree(tmp_path, {
            "src/mypkg/__init__.py": """\
                __all__ = [
                    "documented",
                    "missing",
                ]
            """,
            "src/mypkg/registry.py": "",
            "src/mypkg/api.py": "",
            "docs/api.md": docs_text,
        })

    def test_undocumented_name_is_flagged(self, tmp_path):
        root = self._tree(tmp_path, "# API\n\n`documented` does things.\n")
        diag = one(lint_paths([root / "src"]), "RPR007")
        assert "'missing'" in diag.message
        assert diag.line == 3  # the "missing" element's own line

    def test_fully_documented_all_passes(self, tmp_path):
        root = self._tree(tmp_path, "# API\n\n`documented` and `missing`.\n")
        assert codes(lint_paths([root / "src"])) == []

    def test_missing_docs_file_is_its_own_finding(self, tmp_path):
        root = _write_tree(tmp_path, {
            "deep/nest/src/mypkg/__init__.py": '__all__ = ["x"]\n',
            "deep/nest/src/mypkg/registry.py": "",
            "deep/nest/src/mypkg/api.py": "",
        })
        diag = one(lint_paths([root / "deep"]), "RPR007")
        assert "api.md not found" in diag.message


# ---------------------------------------------------------------------------
# Runner / CLI / self-check
# ---------------------------------------------------------------------------

class TestRunner:
    def test_syntax_error_is_a_diagnostic(self):
        diags = lint_source("def broken(:\n")
        assert codes(diags) == ["RPR000"]

    def test_diagnostics_sort_and_format(self):
        diag = Diagnostic("p.py", 3, 1, "RPR004", "msg")
        assert diag.format() == "p.py:3:1: RPR004 msg"
        assert sorted([Diagnostic("p.py", 9, 0, "RPR003", "b"), diag])[0] is diag

    def test_shipped_tree_lints_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "tests"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_seeded_violation_fails_the_run(self, tmp_path):
        bad = tmp_path / "seeded.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(bad)],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 1
        assert "RPR004" in proc.stdout
        assert "1 finding(s)" in proc.stderr

    def test_cli_subcommand(self, tmp_path):
        from repro.cli import main

        clean = tmp_path / "clean.py"
        clean.write_text("def f(x=None):\n    return x\n")
        assert main(["lint", str(clean)]) == 0
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main(["lint", str(bad)]) == 1

    def test_list_rules(self, capsys):
        from repro.lint import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                     "RPR006", "RPR007"):
            assert code in out


def test_typing_baseline_is_clean():
    """mypy over the gated modules (mypy.ini) stays clean.

    mypy is not a runtime dependency; this runs wherever it is installed
    (CI installs it) and skips elsewhere.
    """
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stdout + proc.stderr

"""Tests for PSNR / rate metrics / bound verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import (
    RateDistortionCurve,
    RateDistortionPoint,
    bit_rate,
    compression_ratio,
    max_abs_error,
    max_rel_error,
    mse,
    nrmse,
    psnr,
    rate_distortion_sweep,
    verify_error_bound,
)
from repro.compressors import SZAutoCompressor


class TestErrorMetrics:
    def test_mse_known_value(self):
        assert mse(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(2.5)

    def test_psnr_matches_paper_definition(self):
        orig = np.array([0.0, 1.0, 2.0, 4.0])  # vrange = 4
        rec = orig + 0.1
        expected = 20 * np.log10(4.0) - 10 * np.log10(0.01)
        assert psnr(orig, rec) == pytest.approx(expected)

    def test_psnr_perfect_reconstruction_is_inf(self):
        data = np.arange(10.0)
        assert psnr(data, data) == float("inf")

    def test_psnr_increases_with_decreasing_error(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=1000)
        small = psnr(data, data + 1e-4 * rng.normal(size=1000))
        large = psnr(data, data + 1e-2 * rng.normal(size=1000))
        assert small > large

    def test_nrmse_normalized_by_range(self):
        orig = np.array([0.0, 10.0])
        rec = np.array([1.0, 10.0])
        assert nrmse(orig, rec) == pytest.approx(np.sqrt(0.5) / 10.0)

    def test_max_abs_error(self):
        assert max_abs_error(np.array([1.0, 2.0]), np.array([1.5, 1.0])) == pytest.approx(1.0)

    def test_max_rel_error(self):
        orig = np.array([0.0, 2.0])
        rec = np.array([0.5, 2.0])
        assert max_rel_error(orig, rec) == pytest.approx(0.25)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            psnr(np.zeros(3), np.zeros(4))

    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(np.float64, st.integers(2, 100),
                      elements=st.floats(-1e3, 1e3, allow_nan=False)),
           st.floats(1e-6, 1e-1))
    def test_psnr_lower_bounded_by_error_bound(self, data, eb):
        """If |err| <= eb*vrange everywhere then PSNR >= -20 log10(eb)."""
        vrange = data.max() - data.min()
        if vrange == 0:
            return
        rng = np.random.default_rng(0)
        rec = data + rng.uniform(-eb * vrange, eb * vrange, size=data.shape)
        assert psnr(data, rec) >= -20 * np.log10(eb) - 1e-6


class TestRateMetrics:
    def test_compression_ratio(self):
        assert compression_ratio(1000, 100) == pytest.approx(10.0)

    def test_compression_ratio_validation(self):
        with pytest.raises(ValueError):
            compression_ratio(0, 10)
        with pytest.raises(ValueError):
            compression_ratio(10, 0)

    def test_bit_rate(self):
        # 100 points compressed to 50 bytes -> 4 bits/point.
        assert bit_rate(50, 100) == pytest.approx(4.0)

    def test_bit_rate_validation(self):
        with pytest.raises(ValueError):
            bit_rate(10, 0)
        with pytest.raises(ValueError):
            bit_rate(-1, 10)

    def test_bit_rate_equals_32_over_cr_for_f32(self):
        original_nbytes, compressed = 4000, 250
        cr = compression_ratio(original_nbytes, compressed)
        br = bit_rate(compressed, original_nbytes // 4)
        assert br == pytest.approx(32.0 / cr)


class TestRateDistortionCurve:
    def _curve(self):
        curve = RateDistortionCurve("test")
        for br, ps in [(0.5, 40.0), (1.0, 50.0), (2.0, 60.0)]:
            curve.add(RateDistortionPoint(error_bound=0.0, bit_rate=br,
                                          compression_ratio=32 / br, psnr=ps,
                                          max_abs_error=0.0))
        return curve

    def test_interpolation_at_bit_rate(self):
        assert self._curve().psnr_at_bit_rate(1.5) == pytest.approx(55.0)

    def test_interpolation_at_psnr(self):
        assert self._curve().bit_rate_at_psnr(45.0) == pytest.approx(0.75)

    def test_compression_ratio_at_psnr(self):
        assert self._curve().compression_ratio_at_psnr(50.0) == pytest.approx(32.0)

    def test_arrays(self):
        curve = self._curve()
        assert curve.bit_rates().tolist() == [0.5, 1.0, 2.0]
        assert curve.psnrs().tolist() == [40.0, 50.0, 60.0]
        assert len(curve.compression_ratios()) == 3

    def test_empty_curve_raises(self):
        with pytest.raises(ValueError):
            RateDistortionCurve("x").psnr_at_bit_rate(1.0)

    def test_point_as_row(self):
        point = RateDistortionPoint(1e-3, 2.0, 16.0, 55.0, 1e-3)
        row = point.as_row()
        assert row["psnr"] == 55.0 and row["bit_rate"] == 2.0

    def test_sweep_produces_monotone_quality(self, field_2d):
        curve = rate_distortion_sweep(SZAutoCompressor(), field_2d, [1e-2, 1e-3])
        assert len(curve.points) == 2
        # Smaller bound -> higher PSNR and higher bit rate.
        assert curve.points[1].psnr > curve.points[0].psnr
        assert curve.points[1].bit_rate > curve.points[0].bit_rate


class TestVerification:
    def test_bound_satisfied_returns_none(self):
        data = np.linspace(0, 1, 100)
        rec = data + 1e-4
        assert verify_error_bound(data, rec, 1e-3) is None

    def test_bound_violation_reported(self):
        data = np.linspace(0, 1, 100)
        rec = data.copy()
        rec[42] += 0.5
        violation = verify_error_bound(data, rec, 1e-3)
        assert violation is not None
        assert violation.index == (42,)
        assert violation.error == pytest.approx(0.5)
        assert "42" in str(violation)

    def test_multidimensional_index(self):
        data = np.zeros((4, 4))
        data[0, 0] = 1.0  # vrange = 1
        rec = data.copy()
        rec[2, 3] += 0.9
        violation = verify_error_bound(data, rec, 0.5)
        assert violation.index == (2, 3)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            verify_error_bound(np.zeros(3), np.zeros(4), 0.1)

"""Tests for the im2col / col2im kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import col2im, conv_output_shape, conv_transpose_output_shape, im2col


class TestOutputShapes:
    def test_conv_output_shape_basic(self):
        assert conv_output_shape((32, 32), (3, 3), (2, 2), (1, 1)) == (16, 16)

    def test_conv_output_shape_no_padding(self):
        assert conv_output_shape((5,), (3,), (1,), (0,)) == (3,)

    def test_conv_output_collapse_raises(self):
        with pytest.raises(ValueError):
            conv_output_shape((2,), (5,), (1,), (0,))

    def test_conv_transpose_output_shape(self):
        assert conv_transpose_output_shape((16,), (3,), (2,), (1,), (1,)) == (32,)

    def test_conv_transpose_collapse_raises(self):
        with pytest.raises(ValueError):
            conv_transpose_output_shape((1,), (1,), (1,), (5,), (0,))


class TestIm2col:
    def test_im2col_shape_2d(self):
        x = np.arange(2 * 3 * 8 * 8, dtype=float).reshape(2, 3, 8, 8)
        cols = im2col(x, (3, 3), (1, 1), (1, 1))
        assert cols.shape == (2, 3 * 9, 64)

    def test_im2col_shape_3d(self):
        x = np.zeros((1, 2, 4, 4, 4))
        cols = im2col(x, (3, 3, 3), (2, 2, 2), (1, 1, 1))
        assert cols.shape == (1, 2 * 27, 2 * 2 * 2)

    def test_im2col_values_identity_kernel(self):
        # 1x1 kernel, stride 1: columns are just the flattened input.
        x = np.random.default_rng(0).normal(size=(1, 2, 5, 5))
        cols = im2col(x, (1, 1), (1, 1), (0, 0))
        np.testing.assert_allclose(cols.reshape(1, 2, 25), x.reshape(1, 2, 25))

    def test_im2col_known_patch(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = im2col(x, (2, 2), (2, 2), (0, 0))
        # First patch (top-left 2x2 block) in row-major order.
        np.testing.assert_allclose(cols[0, :, 0], [0, 1, 4, 5])

    def test_bad_kernel_length_raises(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 1, 4, 4)), (3, 3, 3), (1, 1), (0, 0))

    def test_negative_padding_raises(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 1, 4, 4)), (3, 3), (1, 1), (-1, 0))


class TestCol2imAdjoint:
    """col2im must be the exact adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""

    @pytest.mark.parametrize("shape,kernel,stride,padding", [
        ((2, 3, 8, 8), (3, 3), (1, 1), (1, 1)),
        ((1, 2, 9, 7), (3, 3), (2, 2), (1, 1)),
        ((2, 1, 6, 6, 6), (3, 3, 3), (2, 2, 2), (1, 1, 1)),
        ((1, 2, 10,), (3,), (2,), (0,)),
    ])
    def test_adjoint_property(self, shape, kernel, stride, padding):
        rng = np.random.default_rng(1)
        x = rng.normal(size=shape)
        cols = im2col(x, kernel, stride, padding)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, shape, kernel, stride, padding)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(
        h=st.integers(4, 10), w=st.integers(4, 10),
        stride=st.integers(1, 2), pad=st.integers(0, 1),
    )
    def test_adjoint_property_hypothesis(self, h, w, stride, pad):
        rng = np.random.default_rng(0)
        shape = (1, 1, h, w)
        x = rng.normal(size=shape)
        cols = im2col(x, (3, 3), (stride, stride), (pad, pad))
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, shape, (3, 3), (stride, stride), (pad, pad))))
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)

"""Gradient and shape tests for every layer of the NumPy NN substrate."""

import numpy as np
import pytest

from repro.nn import (
    GDN,
    IGDN,
    BatchNorm,
    Conv2d,
    Conv3d,
    ConvTranspose2d,
    ConvTranspose3d,
    Dense,
    Flatten,
    Identity,
    LeakyReLU,
    ReLU,
    Reshape,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.gradcheck import check_layer_gradients
from repro.nn.layers.conv import ConvNd


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(6, 3, rng=1)
        assert layer.forward(rng.normal(size=(4, 6))).shape == (4, 3)

    def test_gradients(self, rng):
        check_layer_gradients(Dense(5, 4, rng=1), rng.normal(size=(3, 5)))

    def test_no_bias(self, rng):
        layer = Dense(5, 4, bias=False, rng=1)
        assert layer.bias is None
        check_layer_gradients(layer, rng.normal(size=(2, 5)))

    def test_wrong_input_shape_raises(self, rng):
        with pytest.raises(ValueError):
            Dense(5, 4, rng=1).forward(rng.normal(size=(3, 6)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(3, 2, rng=1).backward(np.zeros((1, 2)))

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_num_parameters(self):
        assert Dense(5, 4, rng=1).num_parameters() == 5 * 4 + 4


class TestConv:
    def test_conv2d_output_shape_stride2(self, rng):
        layer = Conv2d(3, 5, 3, stride=2, padding=1, rng=1)
        out = layer.forward(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 5, 8, 8)

    def test_conv2d_gradients(self, rng):
        check_layer_gradients(Conv2d(2, 3, 3, stride=2, padding=1, rng=1),
                              rng.normal(size=(2, 2, 6, 6)))

    def test_conv2d_stride1_gradients(self, rng):
        check_layer_gradients(Conv2d(2, 2, 3, stride=1, padding=1, rng=1),
                              rng.normal(size=(1, 2, 5, 5)))

    def test_conv3d_output_shape(self, rng):
        layer = Conv3d(1, 4, 3, stride=2, padding=1, rng=1)
        out = layer.forward(rng.normal(size=(1, 1, 8, 8, 8)))
        assert out.shape == (1, 4, 4, 4, 4)

    def test_conv3d_gradients(self, rng):
        check_layer_gradients(Conv3d(1, 2, 3, stride=2, padding=1, rng=1),
                              rng.normal(size=(1, 1, 4, 4, 4)))

    def test_conv1d_via_generic(self, rng):
        layer = ConvNd(1, 1, 3, 3, stride=2, padding=1, rng=1)
        out = layer.forward(rng.normal(size=(2, 1, 12)))
        assert out.shape == (2, 3, 6)

    def test_wrong_channel_count_raises(self, rng):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, rng=1).forward(rng.normal(size=(1, 2, 8, 8)))

    def test_wrong_dimensionality_raises(self, rng):
        with pytest.raises(ValueError):
            Conv2d(1, 1, 3, rng=1).forward(rng.normal(size=(1, 1, 8)))

    def test_no_bias(self, rng):
        layer = Conv2d(1, 2, 3, padding=1, bias=False, rng=1)
        assert layer.bias is None
        check_layer_gradients(layer, rng.normal(size=(1, 1, 4, 4)))

    def test_invalid_ndim_raises(self):
        with pytest.raises(ValueError):
            ConvNd(4, 1, 1, 3)


class TestConvTranspose:
    def test_convtranspose2d_upsamples_by_two(self, rng):
        layer = ConvTranspose2d(3, 2, 3, stride=2, padding=1, output_padding=1, rng=1)
        out = layer.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 2, 16, 16)

    def test_convtranspose2d_gradients(self, rng):
        check_layer_gradients(
            ConvTranspose2d(2, 2, 3, stride=2, padding=1, output_padding=1, rng=1),
            rng.normal(size=(1, 2, 4, 4)))

    def test_convtranspose3d_gradients(self, rng):
        check_layer_gradients(
            ConvTranspose3d(1, 2, 3, stride=2, padding=1, output_padding=1, rng=1),
            rng.normal(size=(1, 1, 3, 3, 3)))

    def test_convtranspose3d_shape(self, rng):
        layer = ConvTranspose3d(2, 1, 3, stride=2, padding=1, output_padding=1, rng=1)
        assert layer.forward(rng.normal(size=(1, 2, 4, 4, 4))).shape == (1, 1, 8, 8, 8)

    def test_output_padding_must_be_smaller_than_stride(self):
        with pytest.raises(ValueError):
            ConvTranspose2d(1, 1, 3, stride=2, output_padding=2)

    def test_wrong_channels_raise(self, rng):
        with pytest.raises(ValueError):
            ConvTranspose2d(2, 1, 3, rng=1).forward(rng.normal(size=(1, 3, 4, 4)))


class TestGDN:
    def test_gdn_forward_shrinks_values(self, rng):
        layer = GDN(3)
        x = rng.normal(size=(2, 3, 4, 4))
        y = layer.forward(x)
        assert y.shape == x.shape
        assert np.all(np.abs(y) <= np.abs(x) + 1e-12)

    def test_gdn_gradients(self, rng):
        check_layer_gradients(GDN(2), 0.5 * rng.normal(size=(2, 2, 3, 3)))

    def test_igdn_gradients(self, rng):
        check_layer_gradients(IGDN(2), 0.5 * rng.normal(size=(2, 2, 3, 3)))

    def test_gdn_igdn_approximately_inverse_at_init(self, rng):
        # With the same (diagonal) parameters, IGDN(GDN(x)) ~= x up to the
        # normalization coupling; for a single channel it is exact at beta=1.
        x = 0.3 * rng.normal(size=(2, 1, 4, 4))
        gdn, igdn = GDN(1, gamma_init=0.0), IGDN(1, gamma_init=0.0)
        np.testing.assert_allclose(igdn.forward(gdn.forward(x)), x, atol=1e-10)

    def test_gdn_3d_input(self, rng):
        layer = GDN(2)
        assert layer.forward(rng.normal(size=(1, 2, 3, 3, 3))).shape == (1, 2, 3, 3, 3)

    def test_project_clamps_parameters(self):
        layer = GDN(2)
        layer.beta.value[:] = -1.0
        layer.gamma.value[:] = -0.5
        layer.project()
        assert np.all(layer.beta.value >= layer.beta_min)
        assert np.all(layer.gamma.value >= 0.0)

    def test_wrong_channels_raise(self, rng):
        with pytest.raises(ValueError):
            GDN(3).forward(rng.normal(size=(1, 2, 4, 4)))

    def test_invalid_channels_raise(self):
        with pytest.raises(ValueError):
            GDN(0)


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, Tanh, Sigmoid, Identity])
    def test_gradients(self, layer_cls, rng):
        check_layer_gradients(layer_cls(), rng.normal(size=(3, 4)) + 0.1)

    def test_leaky_relu_gradients(self, rng):
        check_layer_gradients(LeakyReLU(0.3), rng.normal(size=(3, 4)) + 0.1)

    def test_relu_zeroes_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 2.0]])

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.1).forward(np.array([[-10.0, 5.0]]))
        np.testing.assert_allclose(out, [[-1.0, 5.0]])

    def test_tanh_range(self, rng):
        out = Tanh().forward(10 * rng.normal(size=(5, 5)))
        assert np.all(np.abs(out) <= 1.0)

    def test_sigmoid_range(self, rng):
        out = Sigmoid().forward(10 * rng.normal(size=(5, 5)))
        assert np.all((out > 0) & (out < 1))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros((1, 1)))


class TestReshapeFlatten:
    def test_flatten_roundtrip(self, rng):
        x = rng.normal(size=(2, 3, 4, 5))
        layer = Flatten()
        out = layer.forward(x)
        assert out.shape == (2, 60)
        np.testing.assert_allclose(layer.backward(out), x)

    def test_reshape_roundtrip(self, rng):
        x = rng.normal(size=(2, 12))
        layer = Reshape((3, 4))
        out = layer.forward(x)
        assert out.shape == (2, 3, 4)
        np.testing.assert_allclose(layer.backward(out), x)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Flatten().backward(np.zeros((1, 2)))


class TestBatchNorm:
    def test_training_normalizes(self, rng):
        layer = BatchNorm(3)
        x = 5.0 + 2.0 * rng.normal(size=(16, 3, 4, 4))
        out = layer.forward(x, training=True)
        assert abs(out.mean()) < 1e-6
        assert out.std() == pytest.approx(1.0, abs=1e-2)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm(2)
        x = rng.normal(size=(8, 2, 4))
        for _ in range(10):
            layer.forward(x, training=True)
        out_eval = layer.forward(x, training=False)
        assert out_eval.shape == x.shape

    def test_gradients_training(self, rng):
        check_layer_gradients(BatchNorm(2), rng.normal(size=(4, 2, 3)), rtol=1e-3, atol=1e-5)

    def test_wrong_channels_raise(self, rng):
        with pytest.raises(ValueError):
            BatchNorm(3).forward(rng.normal(size=(2, 2, 4)))


class TestSequential:
    def test_forward_backward_chain(self, rng):
        model = Sequential(Dense(6, 4, rng=1), ReLU(), Dense(4, 2, rng=2))
        x = rng.normal(size=(5, 6))
        out = model.forward(x)
        assert out.shape == (5, 2)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_len_getitem_iter(self):
        model = Sequential(ReLU(), Tanh())
        assert len(model) == 2
        assert isinstance(model[0], ReLU)
        assert [type(l).__name__ for l in model] == ["ReLU", "Tanh"]

    def test_append(self):
        model = Sequential(ReLU())
        model.append(Tanh())
        assert len(model) == 2

    def test_rejects_non_module(self):
        with pytest.raises(TypeError):
            Sequential("not a layer")

    def test_parameters_collected_from_children(self):
        model = Sequential(Dense(3, 2, rng=1), Dense(2, 1, rng=2))
        assert model.num_parameters() == (3 * 2 + 2) + (2 * 1 + 1)

    def test_train_eval_propagates(self):
        model = Sequential(BatchNorm(2), ReLU())
        model.eval()
        assert model[0].training is False
        model.train()
        assert model[0].training is True

"""Tests for losses, optimizers, the trainer loop and serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    L1Loss,
    LogCoshLoss,
    MSELoss,
    ReLU,
    SGD,
    Sequential,
    Tanh,
    Trainer,
    TrainingConfig,
    iterate_minibatches,
    load_module_state,
    load_state_dict,
    save_module,
    state_dict,
)
from repro.nn.module import Module, Parameter
from repro.nn.training import TrainingHistory


class TestLosses:
    def test_mse_value_and_grad(self):
        loss, grad = MSELoss()(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(2.5)
        np.testing.assert_allclose(grad, [1.0, 2.0])

    def test_l1_value_and_grad(self):
        loss, grad = L1Loss()(np.array([1.0, -2.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(1.5)
        np.testing.assert_allclose(grad, [0.5, -0.5])

    def test_logcosh_close_to_mse_for_small_errors(self):
        diff = np.array([1e-3, -2e-3])
        lc, _ = LogCoshLoss()(diff, np.zeros(2))
        assert lc == pytest.approx(float(np.mean(diff**2)) / 2, rel=1e-3)

    def test_logcosh_grad_is_tanh(self):
        pred = np.array([3.0, -3.0])
        _, grad = LogCoshLoss()(pred, np.zeros(2))
        np.testing.assert_allclose(grad, np.tanh(pred) / 2)

    @pytest.mark.parametrize("loss_cls", [MSELoss, L1Loss, LogCoshLoss])
    def test_shape_mismatch_raises(self, loss_cls):
        with pytest.raises(ValueError):
            loss_cls()(np.zeros(3), np.zeros(4))

    @pytest.mark.parametrize("loss_cls", [MSELoss, LogCoshLoss])
    def test_numerical_gradient(self, loss_cls):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        loss_fn = loss_cls()
        _, grad = loss_fn(pred, target)
        eps = 1e-6
        numeric = np.zeros_like(pred)
        for idx in np.ndindex(*pred.shape):
            p = pred.copy()
            p[idx] += eps
            lp, _ = loss_fn(p, target)
            p[idx] -= 2 * eps
            lm, _ = loss_fn(p, target)
            numeric[idx] = (lp - lm) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, rtol=1e-4, atol=1e-8)


class _Quadratic(Module):
    """Toy model: minimize ||w - target||^2 via train_step."""

    def __init__(self, target):
        self.w = Parameter(np.zeros_like(np.asarray(target, dtype=float)))
        self.target = np.asarray(target, dtype=float)

    def train_step(self, batch):
        diff = self.w.value - self.target
        self.w.grad += 2 * diff
        return float(np.sum(diff**2))


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        model = _Quadratic([1.0, -2.0])
        opt = SGD(model.parameters(), lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            model.train_step(None)
            opt.step()
        np.testing.assert_allclose(model.w.value, [1.0, -2.0], atol=1e-3)

    def test_sgd_momentum_converges(self):
        model = _Quadratic([0.5, 0.5])
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            model.train_step(None)
            opt.step()
        np.testing.assert_allclose(model.w.value, [0.5, 0.5], atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        model = _Quadratic([3.0, -1.0, 0.25])
        opt = Adam(model.parameters(), lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            model.train_step(None)
            opt.step()
        np.testing.assert_allclose(model.w.value, [3.0, -1.0, 0.25], atol=1e-2)

    def test_adam_weight_decay_shrinks_solution(self):
        model = _Quadratic([1.0])
        opt = Adam(model.parameters(), lr=0.05, weight_decay=1.0)
        for _ in range(300):
            opt.zero_grad()
            model.train_step(None)
            opt.step()
        assert abs(model.w.value[0]) < 1.0

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_invalid_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_invalid_betas_raise(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.9))

    def test_empty_parameters_raise(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_for_module_projects_constraints(self):
        from repro.nn import GDN
        layer = GDN(2)
        opt = Adam.for_module(layer, lr=0.5)
        layer.beta.grad += 100.0  # a huge step that would push beta negative
        opt.step()
        assert np.all(layer.beta.value >= layer.beta_min)


class TestMinibatches:
    def test_covers_all_samples(self):
        data = np.arange(10)[:, None]
        batches = list(iterate_minibatches(data, 3, shuffle=False))
        assert sum(b.shape[0] for b in batches) == 10

    def test_drop_last(self):
        data = np.arange(10)[:, None]
        batches = list(iterate_minibatches(data, 3, shuffle=False, drop_last=True))
        assert all(b.shape[0] == 3 for b in batches)

    def test_shuffle_is_deterministic_with_seed(self):
        data = np.arange(8)[:, None]
        a = np.concatenate(list(iterate_minibatches(data, 4, rng=0)))
        b = np.concatenate(list(iterate_minibatches(data, 4, rng=0)))
        np.testing.assert_array_equal(a, b)

    def test_invalid_batch_size_raises(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((4, 1)), 0))


class TestTrainer:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0)

    def test_trainer_reduces_loss_on_toy_autoencoder(self):
        from repro.autoencoders import AutoencoderConfig, VanillaAutoencoder

        rng = np.random.default_rng(0)
        cfg = AutoencoderConfig(ndim=2, block_size=8, latent_size=4, channels=(2,), seed=0)
        model = VanillaAutoencoder(cfg)
        data = rng.normal(size=(64, 1, 8, 8))
        model.fit_normalization(data)
        trainer = Trainer(model, config=TrainingConfig(epochs=4, batch_size=16, seed=0))
        history = trainer.fit(data)
        assert len(history.epoch_losses) == 4
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_trainer_callback_invoked(self):
        model = _Quadratic([1.0])
        calls = []
        trainer = Trainer(model, optimizer=SGD(model.parameters(), lr=0.1),
                          config=TrainingConfig(epochs=3, batch_size=2))
        trainer.fit(np.zeros((4, 1)), callback=lambda e, l: calls.append(e))
        assert calls == [0, 1, 2]

    def test_empty_data_raises(self):
        model = _Quadratic([1.0])
        trainer = Trainer(model, optimizer=SGD(model.parameters(), lr=0.1))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((0, 1)))

    def test_history_properties(self):
        hist = TrainingHistory(epoch_losses=[2.0, 1.0], epoch_times=[0.1, 0.2])
        assert hist.final_loss == 1.0
        assert hist.total_time == pytest.approx(0.3)


class TestSerialization:
    def test_state_dict_roundtrip(self):
        model = Sequential(Dense(4, 3, rng=1), ReLU(), Dense(3, 2, rng=2))
        clone = Sequential(Dense(4, 3, rng=9), ReLU(), Dense(3, 2, rng=8))
        load_state_dict(clone, state_dict(model))
        x = np.random.default_rng(0).normal(size=(2, 4))
        np.testing.assert_allclose(model.forward(x), clone.forward(x))

    def test_save_load_module(self, tmp_path):
        model = Sequential(Dense(4, 4, rng=1), Tanh(), Dense(4, 1, rng=2))
        path = tmp_path / "weights.npz"
        save_module(model, path)
        clone = Sequential(Dense(4, 4, rng=5), Tanh(), Dense(4, 1, rng=6))
        load_module_state(clone, path)
        x = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(model.forward(x), clone.forward(x))

    def test_strict_mismatch_raises(self):
        model = Sequential(Dense(4, 3, rng=1))
        other = Sequential(Dense(4, 3, rng=1), Dense(3, 2, rng=2))
        with pytest.raises(KeyError):
            load_state_dict(other, state_dict(model))

    def test_shape_mismatch_raises(self):
        model = Sequential(Dense(4, 3, rng=1))
        state = state_dict(model)
        state["layers.0.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            load_state_dict(model, state)

    def test_non_strict_ignores_extras(self):
        model = Sequential(Dense(4, 3, rng=1))
        state = state_dict(model)
        state["bogus"] = np.zeros(3)
        load_state_dict(model, state, strict=False)

"""Tests for the prediction substrate (Lorenzo, mean, regression, interpolation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.predictors import (
    LinearRegressionPredictor,
    LorenzoPredictor,
    MeanPredictor,
    SplineInterpolationPredictor,
    lorenzo_inverse_transform,
    lorenzo_predict,
    lorenzo_transform,
    second_order_lorenzo_inverse,
    second_order_lorenzo_transform,
)
from repro.predictors.interpolation import (
    InterpolationPlan,
    multilevel_interpolation_decode,
    multilevel_interpolation_encode,
)
from repro.predictors.lorenzo import second_order_lorenzo_predict
from repro.predictors.regression import RegressionCoefficients


class TestLorenzoPredict:
    def test_2d_formula(self):
        d = np.array([[1.0, 2.0], [3.0, 5.0]])
        pred = lorenzo_predict(d)
        # point (1,1) predicted by d[1,0] + d[0,1] - d[0,0] = 3 + 2 - 1
        assert pred[1, 1] == pytest.approx(4.0)

    def test_1d_is_previous_value(self):
        d = np.array([1.0, 4.0, 9.0])
        np.testing.assert_allclose(lorenzo_predict(d), [0.0, 1.0, 4.0])

    def test_3d_exact_on_trilinear_data(self):
        # A multilinear function a*i + b*j + c*k + d is predicted exactly
        # (away from the zero-padded borders).
        i, j, k = np.meshgrid(np.arange(5), np.arange(5), np.arange(5), indexing="ij")
        d = 2.0 * i + 3.0 * j - k + 7.0
        pred = lorenzo_predict(d)
        np.testing.assert_allclose(pred[1:, 1:, 1:], d[1:, 1:, 1:], atol=1e-12)

    def test_2d_exact_on_bilinear_data(self):
        i, j = np.meshgrid(np.arange(6), np.arange(7), indexing="ij")
        d = 1.5 * i - 2.0 * j + 3.0
        np.testing.assert_allclose(lorenzo_predict(d)[1:, 1:], d[1:, 1:], atol=1e-12)

    def test_rejects_4d(self):
        with pytest.raises(ValueError):
            lorenzo_predict(np.zeros((2, 2, 2, 2)))

    def test_prediction_equals_value_minus_transform(self):
        rng = np.random.default_rng(0)
        d = rng.normal(size=(9, 11))
        np.testing.assert_allclose(d - lorenzo_transform(d), lorenzo_predict(d))


class TestLorenzoTransforms:
    @pytest.mark.parametrize("shape", [(17,), (6, 9), (4, 5, 6)])
    def test_first_order_invertible(self, shape):
        rng = np.random.default_rng(0)
        grid = rng.integers(-10000, 10000, size=shape)
        np.testing.assert_array_equal(lorenzo_inverse_transform(lorenzo_transform(grid)), grid)

    @pytest.mark.parametrize("shape", [(17,), (6, 9), (4, 5, 6)])
    def test_second_order_invertible(self, shape):
        rng = np.random.default_rng(1)
        grid = rng.integers(-10000, 10000, size=shape)
        np.testing.assert_array_equal(
            second_order_lorenzo_inverse(second_order_lorenzo_transform(grid)), grid)

    def test_second_order_prediction_error_constant_on_quadratic_1d(self):
        # pred[i] = 2 d[i-1] - d[i-2], so the residual on a quadratic 3x^2+2x+1
        # is its constant second difference (= 6) away from the border.
        x = np.arange(20)
        d = (3 * x**2 + 2 * x + 1).astype(np.float64)
        residual = d - second_order_lorenzo_predict(d)
        np.testing.assert_allclose(residual[2:], 6.0, atol=1e-9)

    def test_second_order_exact_on_linear_1d(self):
        x = np.arange(20, dtype=np.float64)
        d = 4.0 * x + 2.0
        pred = second_order_lorenzo_predict(d)
        np.testing.assert_allclose(pred[2:], d[2:], atol=1e-9)

    def test_transform_of_constant_grid_is_sparse(self):
        grid = np.full((8, 8), 5, dtype=np.int64)
        diffs = lorenzo_transform(grid)
        assert diffs[0, 0] == 5
        assert np.count_nonzero(diffs) == 1

    @settings(max_examples=30, deadline=None)
    @given(hnp.arrays(np.int64, st.tuples(st.integers(1, 12), st.integers(1, 12)),
                      elements=st.integers(-1000, 1000)))
    def test_invertibility_property_2d(self, grid):
        np.testing.assert_array_equal(lorenzo_inverse_transform(lorenzo_transform(grid)), grid)


class TestLorenzoPredictorObject:
    def test_mean_fallback_on_constant_block(self):
        block = np.full((8, 8), 3.25)
        pred, meta = LorenzoPredictor().predict(block)
        assert meta["mode"] == "mean"
        np.testing.assert_allclose(pred, block)

    def test_classic_chosen_on_gradient_block(self):
        i, j = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        block = 1.0 * i + 2.0 * j
        _, meta = LorenzoPredictor().predict(block)
        assert meta["mode"] == "classic"

    def test_mean_fallback_can_be_disabled(self):
        block = np.full((4, 4), 1.0)
        _, meta = LorenzoPredictor(use_mean_fallback=False).predict(block)
        assert meta["mode"] == "classic"

    def test_loss_is_nonnegative(self):
        rng = np.random.default_rng(0)
        assert LorenzoPredictor().loss(rng.normal(size=(8, 8))) >= 0.0


class TestMeanPredictor:
    def test_prediction_is_block_mean(self):
        block = np.array([[1.0, 3.0], [5.0, 7.0]])
        pred, mean = MeanPredictor().predict(block)
        assert mean == pytest.approx(4.0)
        np.testing.assert_allclose(pred, 4.0)

    def test_predict_from_value(self):
        out = MeanPredictor().predict_from_value((3, 3), 2.5)
        np.testing.assert_allclose(out, 2.5)

    def test_loss_zero_for_constant_block(self):
        assert MeanPredictor().loss(np.full((5, 5), 9.0)) == pytest.approx(0.0)


class TestLinearRegression:
    def test_exact_on_hyperplane_2d(self):
        i, j = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        block = 0.5 * i - 1.5 * j + 4.0
        pred, coef = LinearRegressionPredictor().fit_predict(block)
        np.testing.assert_allclose(pred, block, atol=1e-9)
        np.testing.assert_allclose(coef.values, [4.0, 0.5, -1.5], atol=1e-9)

    def test_exact_on_hyperplane_3d(self):
        i, j, k = np.meshgrid(np.arange(4), np.arange(5), np.arange(6), indexing="ij")
        block = 1.0 * i + 2.0 * j + 3.0 * k - 1.0
        pred, _ = LinearRegressionPredictor().fit_predict(block)
        np.testing.assert_allclose(pred, block, atol=1e-9)

    def test_quantized_coefficients_bounded_deviation(self):
        rng = np.random.default_rng(0)
        block = rng.normal(size=(16, 16))
        lr = LinearRegressionPredictor()
        coef = lr.fit(block)
        qcoef = coef.quantized(error_bound=0.01, block_size=16)
        # Quantization steps: eb/4 for intercept, eb/(4*16) for slopes.
        assert abs(coef.values[0] - qcoef.values[0]) <= 0.01 / 4 + 1e-12
        assert np.all(np.abs(coef.values[1:] - qcoef.values[1:]) <= 0.01 / (4 * 16) + 1e-12)

    def test_predict_from_given_coefficients(self):
        coef = RegressionCoefficients(np.array([1.0, 2.0, 0.0]))
        pred = LinearRegressionPredictor().predict((2, 3), coef)
        np.testing.assert_allclose(pred, [[1.0, 1.0, 1.0], [3.0, 3.0, 3.0]])

    def test_loss_positive_on_nonplanar_data(self):
        rng = np.random.default_rng(1)
        assert LinearRegressionPredictor().loss(rng.normal(size=(8, 8))) > 0.0

    def test_rejects_4d_blocks(self):
        with pytest.raises(ValueError):
            LinearRegressionPredictor().fit(np.zeros((2, 2, 2, 2)))


class TestInterpolation:
    @pytest.mark.parametrize("shape", [(64,), (33, 45), (12, 17, 21)])
    def test_encode_decode_consistency(self, shape):
        rng = np.random.default_rng(0)
        coords = np.meshgrid(*[np.linspace(0, 2, s) for s in shape], indexing="ij")
        data = sum(np.sin(3 * c + i) for i, c in enumerate(coords)) + 0.01 * rng.normal(size=shape)
        eb = 1e-3 * (data.max() - data.min())
        enc = multilevel_interpolation_encode(data, eb)
        dec = multilevel_interpolation_decode(enc.anchor_codes, enc.codes, enc.unpredictable,
                                              shape, eb)
        np.testing.assert_array_equal(dec, enc.reconstructed)

    @pytest.mark.parametrize("shape", [(50,), (20, 31)])
    def test_error_bound_holds(self, shape):
        rng = np.random.default_rng(1)
        data = rng.normal(size=shape)
        eb = 0.05
        enc = multilevel_interpolation_encode(data, eb)
        assert np.max(np.abs(enc.reconstructed - data)) <= eb * (1 + 1e-9)

    def test_smooth_data_mostly_predictable(self):
        x = np.linspace(0, 4 * np.pi, 200)
        data = np.sin(x)
        enc = multilevel_interpolation_encode(data, 1e-3)
        # Nearly all codes should land in the central bin (perfect-ish prediction).
        center = 65536 // 2
        frac_center = np.mean(np.abs(enc.codes - center) <= 1)
        assert frac_center > 0.8

    def test_plan_passes_cover_all_points(self):
        shape = (17, 9)
        plan = InterpolationPlan.for_shape(shape)
        covered = np.zeros(shape, dtype=bool)
        covered[tuple(slice(0, None, plan.anchor_stride) for _ in shape)] = True
        from repro.predictors.interpolation import _target_grids
        for stride, dim in plan.passes:
            grids = _target_grids(shape, stride, dim)
            if any(g.size == 0 for g in grids):
                continue
            mesh = np.meshgrid(*grids, indexing="ij")
            covered[tuple(mesh)] = True
        assert covered.all()

    def test_predictor_facade(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(30, 30))
        predictor = SplineInterpolationPredictor()
        enc = predictor.encode(data, 0.01)
        dec = predictor.decode(enc, data.shape, 0.01)
        np.testing.assert_array_equal(dec, enc.reconstructed)

    def test_invalid_error_bound_raises(self):
        with pytest.raises(ValueError):
            multilevel_interpolation_encode(np.zeros((4, 4)), 0.0)

    @settings(max_examples=15, deadline=None)
    @given(h=st.integers(3, 40), w=st.integers(3, 40), eb=st.floats(1e-4, 1e-1))
    def test_roundtrip_property(self, h, w, eb):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(h, w))
        enc = multilevel_interpolation_encode(data, eb)
        dec = multilevel_interpolation_decode(enc.anchor_codes, enc.codes, enc.unpredictable,
                                              (h, w), eb)
        np.testing.assert_array_equal(dec, enc.reconstructed)
        assert np.max(np.abs(enc.reconstructed - data)) <= eb * (1 + 1e-9)

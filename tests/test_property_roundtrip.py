"""Property-based roundtrip fuzzing of the facade across the whole codec matrix.

A seeded generator sweeps dtype x shape (0-d/1-d/2-d/3-d, odd sizes,
non-contiguous views) x bound mode x every registered codec, asserting on
every draw that

* ``repro.decompress(repro.compress(x))`` satisfies the requested bound
  (``Rel``/``Abs``/``PtwRel`` each checked against their own inequality, the
  documented constant-field fallback included),
* the archive header is consistent (codec id, shape, dtype, bound record),
* exact codecs reconstruct bit-for-bit, and
* chunked archives obey the same bound as single-shot ones.

The sweep is deterministic: the seed defaults to a fixed value and can be
overridden with ``REPRO_PROPERTY_SEED`` for exploratory fuzzing; a failing
draw is fully reproducible from the parametrized case id.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro import Abs, PtwRel, Rel
from repro.api import compress_chunked
from repro.registry import available_compressors, compressor_spec

PROPERTY_SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "20260730"))
N_DRAWS = 8  # per constructible codec
N_MODEL_DRAWS = 2  # per model-backed codec (training fixture is expensive)

CONSTRUCTIBLE = ("sz21", "zfp", "szauto", "szinterp", "lossless")

MAX_SIDE = {1: (65,), 2: (25, 25), 3: (11, 11, 11)}


def _draw_array(rng: np.random.Generator, ndim_choices=(0, 1, 2, 3)):
    """One random field: dtype, shape (odd sizes common) and memory layout."""
    ndim = int(rng.choice(ndim_choices))
    if ndim == 0:
        shape = ()
    else:
        caps = MAX_SIDE[ndim]
        shape = tuple(int(2 * rng.integers(0, cap // 2) + 1) for cap in caps)
    dtype = np.dtype(str(rng.choice(["float64", "float64", "float32", "float16"])))
    kind = rng.choice(["smooth", "uniform", "constant"], p=[0.6, 0.3, 0.1])
    if kind == "smooth":
        base = rng.standard_normal(shape)
        data = base.cumsum(axis=0) if ndim else base
    elif kind == "uniform":
        data = rng.uniform(-10, 10, size=shape)
    else:
        data = np.full(shape, float(rng.uniform(-5, 5)))
    data = data.astype(dtype)
    layout = rng.choice(["contig", "sliced", "transposed"])
    if layout == "sliced" and ndim >= 1 and shape[0] >= 3:
        big = np.repeat(data, 2, axis=0)
        data = big[::2]  # same values, non-contiguous
    elif layout == "transposed" and ndim >= 2:
        data = data.swapaxes(0, -1).swapaxes(0, -1)  # no-op pair keeps values
        data = np.asfortranarray(data)
    return data


def _draw_bound(rng: np.random.Generator, data: np.ndarray):
    mode = rng.choice(["rel", "rel", "abs", "ptw_rel"])
    eps = float(rng.choice([1e-2, 1e-3, 1e-4]))
    if mode == "rel":
        return Rel(eps)
    if mode == "abs":
        data64 = np.asarray(data, dtype=np.float64)
        vrange = float(data64.max() - data64.min()) if data.size else 1.0
        return Abs(eps * vrange if vrange > 0 else eps)
    return PtwRel(max(eps, 1e-3))  # very tight ptw bounds explode lossless size


def _assert_bound(data: np.ndarray, recon: np.ndarray, bound, codec: str) -> None:
    """The inequality each bound mode promises (with the documented
    constant-field fallback for ``Rel`` and a 1e-12 relative slack for the
    final float comparison)."""
    data64 = np.asarray(data, dtype=np.float64)
    recon64 = np.asarray(recon, dtype=np.float64)
    slack = 1 + 1e-12
    if bound.mode == "rel":
        vrange = float(data64.max() - data64.min())
        limit = bound.value * vrange if vrange > 0 else bound.value
        err = float(np.max(np.abs(data64 - recon64))) if data.size else 0.0
        assert err <= limit * slack, (codec, bound, err, limit)
    elif bound.mode == "abs":
        err = float(np.max(np.abs(data64 - recon64))) if data.size else 0.0
        assert err <= bound.value * slack, (codec, bound, err)
    else:  # ptw_rel
        limit = bound.value * np.abs(data64) * slack
        assert np.all(np.abs(data64 - recon64) <= limit), (codec, bound)
        zeros = data64 == 0
        assert np.all(recon64[zeros] == 0.0), (codec, "zeros must be exact")


def _assert_header(blob: bytes, data: np.ndarray, bound, codec_name: str) -> None:
    header = repro.read_header(blob)
    assert header.codec == codec_name
    assert header.shape == tuple(data.shape)
    assert header.dtype == str(data.dtype)
    assert header.bound_mode == bound.mode
    assert header.bound_value == bound.value


@pytest.mark.parametrize("codec", CONSTRUCTIBLE)
@pytest.mark.parametrize("draw", range(N_DRAWS))
def test_roundtrip_property(codec, draw):
    codec_key = sum(codec.encode())  # stable across processes, unlike hash()
    rng = np.random.default_rng([PROPERTY_SEED, codec_key, draw])
    data = _draw_array(rng)
    bound = _draw_bound(rng, data)
    spec = compressor_spec(codec)
    blob = repro.compress(data, codec=codec, bound=bound)
    recon = repro.decompress(blob)
    assert recon.shape == data.shape
    _assert_header(blob, data, bound, codec)
    _assert_bound(data, recon, bound, codec)
    if spec.exact and bound.mode != "ptw_rel":
        assert np.array_equal(np.asarray(data), recon), codec


@pytest.mark.parametrize("codec", ["sz21", "szinterp"])
@pytest.mark.parametrize("draw", range(N_DRAWS))
def test_vectorized_encode_archive_equality_property(codec, draw):
    """Invariant crossing the vectorized encode paths: for any drawn field,
    shape and bound, the vectorized encoder's archive is byte-identical to
    the scalar reference encoder's (``codec_options={'scalar': True}``)."""
    codec_key = sum(codec.encode())  # stable across processes, unlike hash()
    rng = np.random.default_rng([PROPERTY_SEED, 0xE, codec_key, draw])
    data = _draw_array(rng, ndim_choices=(1, 2, 3))
    bound = _draw_bound(rng, data)
    fast = repro.compress(data, codec=codec, bound=bound)
    slow = repro.compress(data, codec=codec, bound=bound,
                          codec_options={"scalar": True})
    assert fast == slow, (codec, data.shape, bound)
    recon_fast, recon_slow = repro.decompress(fast), repro.decompress(slow)
    assert np.array_equal(recon_fast, recon_slow, equal_nan=True), codec
    _assert_bound(data, recon_fast, bound, codec)


@pytest.mark.parametrize("draw", range(N_DRAWS))
def test_chunked_roundtrip_property(draw):
    """Chunked archives obey the same bound and header contract (serial: the
    worker-pool path is covered once in test_chunked.py — spawning pools per
    draw would dominate the suite's runtime)."""
    rng = np.random.default_rng([PROPERTY_SEED, 0xC, draw])
    data = _draw_array(rng, ndim_choices=(1, 2, 3))
    bound = _draw_bound(rng, data)
    codec = str(rng.choice(["sz21", "szinterp", "zfp"]))
    chunk_size = int(rng.integers(1, max(2, data.size)))
    blob = compress_chunked(data, codec=codec, bound=bound, chunk_size=chunk_size)
    recon = repro.decompress(blob)
    assert recon.shape == data.shape
    header = repro.read_header(blob)
    assert header.codec == codec
    assert header.shape == tuple(data.shape)
    assert header.dtype == str(data.dtype)
    assert (header.bound_mode, header.bound_value) == (bound.mode, bound.value)
    assert header.starts[0] == 0 and header.starts[-1] == data.shape[0]
    _assert_bound(data, recon, bound, codec)


@pytest.mark.parametrize("draw", range(N_MODEL_DRAWS))
def test_model_backed_codecs_property(draw, trained_aesz_2d):
    """Model-backed codecs join the sweep on 2-d fields (their native shape)."""
    from repro.compressors import AEACompressor, AEBCompressor

    rng = np.random.default_rng([PROPERTY_SEED, 0xA, draw])
    shape = tuple(int(2 * rng.integers(8, 20) + 1) for _ in range(2))
    data = rng.standard_normal(shape).cumsum(axis=0)
    eps = 0.05

    for name, inst in [("aesz", trained_aesz_2d),
                       ("ae_a", AEACompressor(segment_length=512, seed=draw)),
                       ("ae_b", AEBCompressor(block_size=8, ndim=2, seed=draw))]:
        blob = repro.compress(data, codec=inst, bound=Rel(eps))
        recon = repro.decompress(blob)
        assert recon.shape == data.shape, name
        header = repro.read_header(blob)
        assert header.codec == name
        assert header.shape == shape
        if compressor_spec(name).error_bounded:
            _assert_bound(data, recon, Rel(eps), name)
        else:
            assert np.all(np.isfinite(recon)), name


def test_every_registered_codec_is_covered():
    """The sweep must grow when a new codec is registered."""
    covered = set(CONSTRUCTIBLE) | {"aesz", "ae_a", "ae_b"}
    assert covered == set(available_compressors())

"""Tests for error-controlled quantization (the core error-bound guarantee)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quantization import (
    LinearQuantizer,
    UniformQuantizer,
    dequantize_prediction_errors,
    quantize_prediction_errors,
)
from repro.quantization.linear import UNPREDICTABLE_CODE


class TestLinearQuantizer:
    def test_bound_holds_for_good_predictions(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(40, 40))
        pred = data + rng.normal(scale=0.01, size=data.shape)
        qr = quantize_prediction_errors(data, pred, 0.005)
        assert np.max(np.abs(qr.reconstructed - data)) <= 0.005 * (1 + 1e-9)

    def test_bound_holds_for_terrible_predictions(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=1000)
        pred = np.zeros_like(data) + 100.0  # way off -> everything unpredictable
        qr = quantize_prediction_errors(data, pred, 1e-3, num_bins=16)
        assert np.max(np.abs(qr.reconstructed - data)) <= 1e-3 * (1 + 1e-9)
        assert qr.n_unpredictable > 0

    def test_roundtrip_matches_reconstruction(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(20, 30))
        pred = data + rng.normal(scale=0.5, size=data.shape)
        eb = 0.01
        qr = quantize_prediction_errors(data, pred, eb)
        rec = dequantize_prediction_errors(qr.codes, pred, qr.unpredictable, eb)
        np.testing.assert_array_equal(rec, qr.reconstructed)

    def test_unpredictable_code_is_zero(self):
        data = np.array([100.0])
        pred = np.array([0.0])
        qr = quantize_prediction_errors(data, pred, 1e-6, num_bins=4)
        assert qr.codes[0] == UNPREDICTABLE_CODE

    def test_perfect_prediction_gives_center_codes(self):
        data = np.ones(10)
        qr = quantize_prediction_errors(data, data, 0.1, num_bins=64)
        assert set(qr.codes.tolist()) == {32}
        assert qr.n_unpredictable == 0

    def test_codes_within_bin_range(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=500)
        pred = data + rng.normal(scale=1.0, size=500)
        qr = quantize_prediction_errors(data, pred, 1e-2, num_bins=256)
        assert qr.codes.min() >= 0 and qr.codes.max() < 256

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            quantize_prediction_errors(np.zeros(3), np.zeros(4), 0.1)

    def test_invalid_error_bound_raises(self):
        with pytest.raises(ValueError):
            quantize_prediction_errors(np.zeros(3), np.zeros(3), 0.0)

    def test_invalid_num_bins_raises(self):
        with pytest.raises(ValueError):
            quantize_prediction_errors(np.zeros(3), np.zeros(3), 0.1, num_bins=1)

    def test_dequantize_wrong_unpred_count_raises(self):
        data, pred = np.array([100.0]), np.array([0.0])
        qr = quantize_prediction_errors(data, pred, 1e-6, num_bins=4)
        with pytest.raises(ValueError):
            dequantize_prediction_errors(qr.codes, pred, np.zeros(0), 1e-6, num_bins=4)

    def test_object_wrapper_equivalent(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=100)
        pred = data + 0.01 * rng.normal(size=100)
        q = LinearQuantizer(1e-2, num_bins=128)
        qr = q.quantize(data, pred)
        rec = q.dequantize(qr.codes, pred, qr.unpredictable)
        np.testing.assert_array_equal(rec, qr.reconstructed)

    def test_wrapper_validation(self):
        with pytest.raises(ValueError):
            LinearQuantizer(0.0)
        with pytest.raises(ValueError):
            LinearQuantizer(0.1, num_bins=0)

    @settings(max_examples=40, deadline=None)
    @given(
        data=hnp.arrays(np.float64, st.integers(1, 200),
                        elements=st.floats(-1e6, 1e6, allow_nan=False)),
        noise_scale=st.floats(0, 10),
        eb=st.floats(1e-6, 1.0),
    )
    def test_error_bound_property(self, data, noise_scale, eb):
        """For any data, any prediction and any bound: |recon - data| <= eb."""
        rng = np.random.default_rng(0)
        pred = data + noise_scale * rng.normal(size=data.shape)
        qr = quantize_prediction_errors(data, pred, eb, num_bins=1024)
        assert np.max(np.abs(qr.reconstructed - data)) <= eb * (1 + 1e-9)
        rec = dequantize_prediction_errors(qr.codes, pred, qr.unpredictable, eb, num_bins=1024)
        np.testing.assert_array_equal(rec, qr.reconstructed)


class TestUniformQuantizer:
    def test_bound_holds(self):
        rng = np.random.default_rng(0)
        values = rng.normal(scale=100, size=1000)
        q = UniformQuantizer(0.05)
        codes, rec = q.roundtrip(values)
        assert np.max(np.abs(rec - values)) <= 0.05 * (1 + 1e-12)

    def test_codes_are_integers(self):
        q = UniformQuantizer(0.1)
        assert q.quantize(np.array([0.05, 0.3])).dtype == np.int64

    def test_dequantize_inverse_of_quantize_on_grid(self):
        q = UniformQuantizer(0.5)
        codes = np.array([-3, 0, 7])
        np.testing.assert_allclose(q.quantize(q.dequantize(codes)), codes)

    def test_invalid_bound_raises(self):
        with pytest.raises(ValueError):
            UniformQuantizer(0.0)

    @settings(max_examples=30, deadline=None)
    @given(hnp.arrays(np.float64, st.integers(1, 100),
                      elements=st.floats(-1e5, 1e5, allow_nan=False)),
           st.floats(1e-5, 10.0))
    def test_bound_property(self, values, eb):
        q = UniformQuantizer(eb)
        _, rec = q.roundtrip(values)
        assert np.max(np.abs(rec - values)) <= eb * (1 + 1e-9)

"""Random-access region decode: the N-d chunk grid (format v3) + read_region.

Acceptance (ISSUE 4): ``read_region`` on a 3-d chunked archive decodes only
the intersecting tiles (asserted via a decode counter), empty/degenerate and
cross-boundary regions behave exactly like numpy slicing, negative/strided
slices fail with a clear ``ValueError``, and v2 single-axis archives are
served through the same path.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import Abs, PtwRel, Rel
from repro import api
from repro.api import (
    compress_chunked,
    iter_region_tiles,
    normalize_region,
    parse_region,
    read_region,
)
from repro.cli import main as cli_main
from repro.data.loader import create_f32, load_f32, save_f32
from repro.encoding.container import (
    Archive,
    ChunkedIndex,
    GridIndex,
    archive_version,
    build_grid_archive,
    is_grid_archive,
)

EB = 1e-3


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(2027)
    return rng.standard_normal((40, 33, 17)).cumsum(axis=0)


@pytest.fixture(scope="module")
def grid_blob(field):
    # 16/16/8 tiles over (40, 33, 17): a 3x3x3 grid with ragged edge tiles
    # on every axis, so boundary crossings are exercised everywhere.
    return compress_chunked(field, codec="sz21", bound=Rel(EB),
                            chunk_shape=(16, 16, 8))


@pytest.fixture(scope="module")
def full_recon(grid_blob):
    return repro.decompress(grid_blob)


@pytest.fixture()
def decode_counter(monkeypatch):
    """Count v1 tile decodes inside the facade (serial paths)."""
    calls = []
    real = api._decompress_archive

    def counting(blob, **kwargs):
        calls.append(len(blob))
        return real(blob, **kwargs)

    monkeypatch.setattr(api, "_decompress_archive", counting)
    return calls


class TestGridContainer:
    def test_version_and_index(self, field, grid_blob):
        assert archive_version(grid_blob) == 3
        assert is_grid_archive(grid_blob)
        index = GridIndex.from_bytes(grid_blob)
        assert index.codec == "sz21"
        assert index.shape == field.shape
        assert index.chunk_shape == (16, 16, 8)
        assert index.grid_shape == (3, 3, 3)
        assert index.n_tiles == 27
        # ragged edge tiles: last tile is the corner remainder
        assert index.tile_shape(0) == (16, 16, 8)
        assert index.tile_shape(26) == (8, 1, 1)
        with pytest.raises(ValueError, match="grid"):
            Archive.from_bytes(grid_blob)
        with pytest.raises(ValueError, match="not a chunked archive"):
            ChunkedIndex.from_bytes(grid_blob)

    def test_read_header_returns_grid_index(self, grid_blob, tmp_path):
        assert isinstance(repro.read_header(grid_blob), GridIndex)
        path = tmp_path / "grid.rpra"
        path.write_bytes(grid_blob)
        header = repro.read_header(str(path))
        assert isinstance(header, GridIndex) and header.n_tiles == 27

    def test_tile_corruption_detected_only_when_read(self, field, grid_blob):
        index = GridIndex.from_bytes(grid_blob)
        flipped = bytearray(grid_blob)
        victim = 26  # the far-corner tile
        flipped[index.data_start + index.offsets[victim] + 7] ^= 0x20
        flipped = bytes(flipped)
        # A region avoiding the victim decodes fine...
        good = read_region(flipped, (slice(0, 16), slice(0, 16), slice(0, 8)))
        assert good.shape == (16, 16, 8)
        # ...but touching it fails loudly.
        with pytest.raises(ValueError, match="corrupt archive"):
            read_region(flipped, (slice(38, 40), slice(32, 33), slice(16, 17)))
        with pytest.raises(ValueError, match="corrupt archive"):
            repro.decompress(flipped)

    def test_builder_validates(self):
        with pytest.raises(ValueError, match="axes"):
            build_grid_archive(codec="sz21", shape=(4, 6), dtype="float64",
                              bound_mode="rel", bound_value=EB,
                              chunk_shape=(2,), tile_blobs=[b"x"])
        with pytest.raises(ValueError, match="needs 6 tiles"):
            build_grid_archive(codec="sz21", shape=(4, 6), dtype="float64",
                              bound_mode="rel", bound_value=EB,
                              chunk_shape=(2, 2), tile_blobs=[b"x"])

    def test_iter_decompressed_chunks_refuses_grid(self, grid_blob):
        with pytest.raises(ValueError, match="iter_region_tiles"):
            list(repro.iter_decompressed_chunks(grid_blob))


class TestCompressGrid:
    def test_full_roundtrip_within_bound(self, field, grid_blob, full_recon):
        vrange = float(field.max() - field.min())
        assert full_recon.shape == field.shape
        assert float(np.max(np.abs(field - full_recon))) <= EB * vrange

    def test_workers_bit_identical(self, field, grid_blob):
        parallel = compress_chunked(field, codec="sz21", bound=Rel(EB),
                                    chunk_shape=(16, 16, 8), workers=2)
        assert parallel == grid_blob

    def test_scalar_and_full_axis_chunk_shape(self, field):
        # bare int applies to every axis; -1/None mean "the full axis"
        a = compress_chunked(field, codec="sz21", bound=Rel(EB), chunk_shape=16)
        b = compress_chunked(field, codec="sz21", bound=Rel(EB),
                             chunk_shape=(16, -1, None))
        assert GridIndex.from_bytes(a).chunk_shape == (16, 16, 16)
        assert GridIndex.from_bytes(b).chunk_shape == (16, 33, 17)

    def test_chunk_shape_overrides_chunk_size(self, field):
        """chunk_shape wins over chunk_size, including the off value 0."""
        a = compress_chunked(field, codec="sz21", bound=Rel(EB),
                             chunk_shape=(16, 16, 8), chunk_size=0)
        b = compress_chunked(field, codec="sz21", bound=Rel(EB),
                             chunk_shape=(16, 16, 8), chunk_size=7)
        assert a == b  # the range pass granularity never changes the bytes

    def test_chunk_shape_validation(self, field):
        with pytest.raises(ValueError, match="axes"):
            compress_chunked(field, codec="sz21", chunk_shape=(16, 16))
        with pytest.raises(ValueError, match="positive tile size"):
            compress_chunked(field, codec="sz21", chunk_shape=(16, 0, 8))
        with pytest.raises(ValueError, match="iterator"):
            compress_chunked(iter([field]), codec="sz21", bound=Abs(0.1),
                             chunk_shape=(16, 16, 8))

    def test_ptwrel_through_grid(self, field):
        positive = np.abs(field) + 0.5
        blob = compress_chunked(positive, codec="sz21", bound=PtwRel(1e-2),
                                chunk_shape=(16, 16, 8))
        piece = read_region(blob, (slice(3, 30), slice(10, 20), slice(2, 16)))
        ref = positive[3:30, 10:20, 2:16]
        assert np.all(np.abs(ref - piece) <= 1e-2 * ref * (1 + 1e-12))

    def test_narrow_dtype_restores_through_tiles(self, field):
        f32 = field.astype(np.float32)
        blob = compress_chunked(f32, codec="sz21", bound=Rel(EB),
                                chunk_shape=(16, 16, 8))
        piece = read_region(blob, (slice(0, 20),))
        assert piece.dtype == np.float32


class TestReadRegion:
    def test_crossing_tile_boundaries_on_every_axis(self, grid_blob, full_recon):
        region = (slice(10, 30), slice(5, 20), slice(3, 12))
        piece = read_region(grid_blob, region)
        assert piece.shape == (20, 15, 9)
        assert np.array_equal(piece, full_recon[region])

    @pytest.mark.parametrize("region", [
        (slice(0, 40), slice(0, 33), slice(0, 17)),  # everything
        (slice(16, 32),),                            # trailing axes default
        (slice(39, 40), slice(32, 33), slice(16, 17)),  # far ragged corner
        (slice(0, 1), slice(0, 1), slice(0, 1)),        # single element
        (5, 7, slice(None)),                            # ints keep their axis
    ])
    def test_matches_numpy_slicing(self, grid_blob, full_recon, region):
        expected = full_recon[tuple(
            slice(e, e + 1) if isinstance(e, int) else e for e in region)]
        piece = read_region(grid_blob, region)
        assert piece.shape == expected.shape
        assert np.array_equal(piece, expected)

    def test_region_string(self, grid_blob, full_recon):
        piece = read_region(grid_blob, "10:30,5:20,3:12")
        assert np.array_equal(piece, full_recon[10:30, 5:20, 3:12])

    def test_empty_and_degenerate_slices(self, grid_blob, decode_counter):
        for region in [(slice(5, 5),), (slice(30, 10),),
                       (slice(0, 40), slice(33, 33)),
                       (slice(100, 200),)]:
            piece = read_region(grid_blob, region)
            assert piece.size == 0
            assert piece.shape == np.empty((40, 33, 17))[region].shape
        assert decode_counter == []  # empty regions decode nothing at all

    def test_out_of_range_clamps_like_numpy(self, grid_blob, full_recon):
        piece = read_region(grid_blob, (slice(35, 99), slice(0, 50)))
        assert np.array_equal(piece, full_recon[35:99, 0:50])

    def test_negative_and_step_slices_rejected(self, grid_blob):
        with pytest.raises(ValueError, match="negative indices"):
            read_region(grid_blob, (slice(-5, None),))
        with pytest.raises(ValueError, match="negative indices"):
            read_region(grid_blob, (slice(0, -2),))
        with pytest.raises(ValueError, match="strided slices"):
            read_region(grid_blob, (slice(0, 10, 2),))
        with pytest.raises(ValueError, match="step must be an integer"):
            read_region(grid_blob, (slice(0, 10, 1.5),))
        with pytest.raises(ValueError, match="axes"):
            read_region(grid_blob, (slice(None),) * 4)
        with pytest.raises(ValueError, match="expected a slice"):
            read_region(grid_blob, ("nope",))

    def test_only_intersecting_tiles_decoded(self, grid_blob, decode_counter):
        """The acceptance assertion: out-of-region tiles are never decoded."""
        index = GridIndex.from_bytes(grid_blob)
        cases = [
            ((slice(0, 16), slice(0, 16), slice(0, 8)), 1),    # one tile
            ((slice(0, 17), slice(0, 16), slice(0, 8)), 2),    # one-row spill
            ((slice(10, 30), slice(5, 20), slice(3, 12)), 8),  # 2x2x2 corner
            ((slice(39, 40), slice(32, 33), slice(16, 17)), 1),
        ]
        for region, expected_tiles in cases:
            decode_counter.clear()
            bounds = normalize_region(region, index.shape)
            assert len(index.region_tiles(bounds)) == expected_tiles
            read_region(grid_blob, region)
            assert len(decode_counter) == expected_tiles, region
        decode_counter.clear()
        repro.decompress(grid_blob)
        assert len(decode_counter) == index.n_tiles  # full decode = all tiles

    def test_path_source_reads_o_region_bytes(self, grid_blob, tmp_path,
                                              full_recon):
        path = tmp_path / "grid.rpra"
        path.write_bytes(grid_blob)
        index = GridIndex.from_bytes(grid_blob)
        reader = api._FileReader(str(path))
        with reader:
            loaded = api._load_index(reader)
            header_bytes = reader.bytes_read
            assert isinstance(loaded, GridIndex)
        region = (slice(0, 16), slice(0, 16), slice(0, 8))
        piece = read_region(str(path), region)
        assert np.array_equal(piece, full_recon[region])
        # The one intersecting tile + the front header bound the I/O.
        expected_io = header_bytes + index.lengths[0]
        assert expected_io < len(grid_blob) // 3  # genuinely sub-linear

    def test_workers_match_serial(self, grid_blob, full_recon):
        region = (slice(10, 30), slice(5, 20), slice(3, 12))
        serial = read_region(grid_blob, region)
        parallel = read_region(grid_blob, region, workers=2)
        assert np.array_equal(serial, parallel)
        assert np.array_equal(serial, full_recon[region])

    def test_out_memmap_gather(self, grid_blob, full_recon, tmp_path):
        region = (slice(10, 30), slice(5, 20), slice(3, 12))
        out = np.memmap(tmp_path / "region.dat", dtype=np.float64, mode="w+",
                        shape=(20, 15, 9))
        result = read_region(grid_blob, region, out=out)
        assert result is out
        assert np.array_equal(np.asarray(out), full_recon[region])
        with pytest.raises(ValueError, match="shape"):
            read_region(grid_blob, region, out=np.empty((3, 3, 3)))

    def test_v2_served_through_read_region(self, field, decode_counter):
        """v2 single-axis archives go through the same read_region path."""
        blob = compress_chunked(field, codec="sz21", bound=Rel(EB),
                                chunk_size=2000)  # axis-0 slabs
        index = ChunkedIndex.from_bytes(blob)
        assert index.n_chunks > 3
        full = repro.decompress(blob)
        decode_counter.clear()
        piece = read_region(blob, (slice(0, 3), slice(5, 20), slice(3, 12)))
        assert np.array_equal(piece, full[0:3, 5:20, 3:12])
        assert len(decode_counter) == 1  # only the first slab decodes

    def test_v1_served_through_read_region(self, field):
        blob = repro.compress(field, codec="sz21", bound=Rel(EB))
        full = repro.decompress(blob)
        piece = read_region(blob, (slice(10, 30), slice(5, 20)))
        assert np.array_equal(piece, full[10:30, 5:20])
        assert read_region(blob, (slice(4, 4),)).size == 0

    def test_0d_archives(self):
        blob = compress_chunked(np.array(3.25), codec="lossless",
                                bound=Abs(1.0), chunk_shape=())
        assert float(repro.decompress(blob)) == 3.25
        assert float(read_region(blob, ())) == 3.25

    def test_iter_region_tiles_streams_cropped_pieces(self, grid_blob,
                                                      full_recon):
        region = (slice(10, 30), slice(5, 20), slice(3, 12))
        gathered = np.full((20, 15, 9), np.nan)
        pieces = 0
        for local, piece in iter_region_tiles(grid_blob, region):
            gathered[local] = piece
            pieces += 1
        assert pieces == 8
        assert np.array_equal(gathered, full_recon[region])


class TestParseRegion:
    def test_forms(self):
        assert parse_region("10:20,:,5") == (slice(10, 20), slice(None),
                                             slice(5, 6))
        assert parse_region(" 1:2 , 3: , :4 ") == (slice(1, 2), slice(3, None),
                                                   slice(None, 4))
        assert parse_region("::") == (slice(None, None, None),)

    def test_errors(self):
        with pytest.raises(ValueError, match="bad region field"):
            parse_region("1:2:3:4")
        with pytest.raises(ValueError, match="integers"):
            parse_region("a:b")
        with pytest.raises(ValueError, match="empty axis"):
            parse_region("1:2,,3:4")


class TestRegionCLI:
    def test_compress_extract_info(self, tmp_path, capsys):
        rng = np.random.default_rng(11)
        field = rng.standard_normal((24, 20, 16)).cumsum(axis=0).astype(np.float32)
        src, archive = tmp_path / "in.f32", tmp_path / "out.rpra"
        save_f32(src, field)
        rc = cli_main(["compress", str(src), str(archive),
                       "--dims", "24", "20", "16", "--error-bound", "1e-3",
                       "--compressor", "szinterp", "--chunk-shape", "8", "8", "8"])
        assert rc == 0
        assert "tiles" in capsys.readouterr().out

        rc = cli_main(["info", str(archive)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RPRA v3" in out and "rel = 0.001" in out
        assert "chunk shape (8, 8, 8)" in out and "18 tiles" in out

        region_file = tmp_path / "region.f32"
        rc = cli_main(["extract", str(archive), str(region_file),
                       "--region", "3:19,2:10,5:13"])
        assert rc == 0
        assert "decoded 12 of 18 tiles" in capsys.readouterr().out
        full = repro.decompress(archive.read_bytes()).astype(np.float32)
        assert np.array_equal(load_f32(region_file, (16, 8, 8)),
                              full[3:19, 2:10, 5:13])

    def test_extract_empty_region_and_errors(self, tmp_path, capsys):
        rng = np.random.default_rng(12)
        field = rng.standard_normal((16, 8)).cumsum(axis=0).astype(np.float32)
        src, archive = tmp_path / "in.f32", tmp_path / "out.rpra"
        save_f32(src, field)
        assert cli_main(["compress", str(src), str(archive), "--dims", "16", "8",
                         "--error-bound", "1e-3", "--compressor", "szinterp",
                         "--chunk-shape", "8", "8"]) == 0
        capsys.readouterr()
        empty = tmp_path / "empty.f32"
        assert cli_main(["extract", str(archive), str(empty),
                         "--region", "5:5,:"]) == 0
        assert "empty" in capsys.readouterr().out
        assert empty.stat().st_size == 0
        with pytest.raises(SystemExit, match="strided"):
            cli_main(["extract", str(archive), str(tmp_path / "x.f32"),
                      "--region", "0:8:2,:"])

    def test_info_single_shot_and_v2(self, tmp_path, capsys):
        rng = np.random.default_rng(13)
        field = rng.standard_normal((16, 8)).cumsum(axis=0).astype(np.float32)
        src = tmp_path / "in.f32"
        save_f32(src, field)
        single, chunked = tmp_path / "s.rpra", tmp_path / "c.rpra"
        assert cli_main(["compress", str(src), str(single), "--dims", "16", "8",
                         "--error-bound", "0.02", "--bound-mode", "abs",
                         "--compressor", "sz21"]) == 0
        assert cli_main(["compress", str(src), str(chunked), "--dims", "16", "8",
                         "--error-bound", "1e-3", "--compressor", "sz21",
                         "--chunk-size", "32"]) == 0
        capsys.readouterr()
        assert cli_main(["info", str(single)]) == 0
        out = capsys.readouterr().out
        assert "RPRA v1" in out and "abs = 0.02" in out and "single-shot" in out
        assert cli_main(["info", str(chunked)]) == 0
        out = capsys.readouterr().out
        assert "RPRA v2" in out and "axis 0" in out and "chunks" in out

    def test_info_compare_mode_needs_dims(self, tmp_path):
        a = tmp_path / "a.f32"
        save_f32(a, np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(SystemExit, match="--dims"):
            cli_main(["info", str(a), str(a)])
        with pytest.raises(SystemExit, match="one archive"):
            cli_main(["info", str(a), str(a), str(a)])

    def test_create_f32_memmap(self, tmp_path):
        out = create_f32(tmp_path / "m.f32", (4, 6))
        out[:] = 1.5
        out.flush()
        assert np.array_equal(load_f32(tmp_path / "m.f32", (4, 6)),
                              np.full((4, 6), 1.5, dtype=np.float32))
        with pytest.raises(ValueError, match="empty"):
            create_f32(tmp_path / "e.f32", (0, 6))

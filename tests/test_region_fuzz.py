"""Seeded fuzz suite for ``parse_region`` / ``normalize_region``.

Two obligations (ISSUE 5):

* random **valid** specs — as strings and as slice/int tuples — roundtrip
  against direct numpy slicing: the region the parser describes selects
  exactly the elements numpy's own basic slicing selects, on every shape;
* random **malformed** specs (empty axes, strides, garbage tokens,
  out-of-range axis counts, non-integers) always raise ``ValueError`` —
  never a crash, never a silent wrong answer.

The draw sequence is deterministic per seed; override with
``REPRO_PROPERTY_SEED`` (the same knob as the property-roundtrip suite) to
explore a different corner in CI without touching the code.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro import api

SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "20260730"))
N_VALID = 300
N_MALFORMED = 300


def _random_shape(rng) -> tuple:
    ndim = int(rng.integers(1, 5))
    return tuple(int(rng.integers(1, 10)) for _ in range(ndim))


def _valid_axis_spec(rng, dim: int):
    """One axis of a valid region: ``(string form, numpy slice form)``.

    Draws deliberately include bounds beyond ``dim`` (numpy clamps) and
    reversed ``start >= stop`` pairs (numpy yields an empty axis) — valid
    inputs whose semantics must match numpy exactly.
    """
    kind = rng.choice(["full", "both", "start", "stop", "int"])
    if kind == "full":
        return ":", slice(None)
    if kind == "int":
        i = int(rng.integers(0, dim + 3))
        # A bare integer keeps its axis with length 1 (i:i+1 semantics).
        return str(i), slice(i, i + 1)
    a = int(rng.integers(0, dim + 4))
    b = int(rng.integers(0, dim + 4))
    if kind == "start":
        return f"{a}:", slice(a, None)
    if kind == "stop":
        return f":{b}", slice(None, b)
    return f"{a}:{b}", slice(a, b)


def test_valid_string_specs_roundtrip_against_numpy():
    rng = np.random.default_rng(SEED)
    for _ in range(N_VALID):
        shape = _random_shape(rng)
        arr = rng.standard_normal(shape)
        n_axes = int(rng.integers(1, len(shape) + 1))  # trailing axes default
        parts = [_valid_axis_spec(rng, d) for d in shape[:n_axes]]
        spec = ",".join(p[0] for p in parts)
        want = arr[tuple(p[1] for p in parts)]

        region = repro.parse_region(spec)
        bounds = api.normalize_region(region, shape)
        got = arr[tuple(slice(b0, b1) for b0, b1 in bounds)]
        assert got.shape == want.shape, (spec, shape)
        assert np.array_equal(got, want), (spec, shape)


def test_valid_tuple_specs_roundtrip_against_numpy():
    rng = np.random.default_rng(SEED + 1)
    for _ in range(N_VALID):
        shape = _random_shape(rng)
        arr = rng.standard_normal(shape)
        region, npy = [], []
        for d in shape:
            _, sl = _valid_axis_spec(rng, d)
            if sl.start is not None and sl.stop == sl.start + 1 \
                    and rng.integers(0, 2):
                region.append(sl.start)  # exercise the bare-int promotion
            else:
                region.append(sl)
            npy.append(sl)
        bounds = api.normalize_region(tuple(region), shape)
        got = arr[tuple(slice(b0, b1) for b0, b1 in bounds)]
        want = arr[tuple(npy)]
        assert np.array_equal(got, want), (region, shape)


def test_valid_specs_through_read_region():
    """A sample of fuzz draws through the real decode path on a grid archive."""
    rng = np.random.default_rng(SEED + 2)
    data = rng.standard_normal((24, 24, 24)).cumsum(axis=0)
    blob = api.compress_chunked(data, codec="szinterp", bound=1e-3,
                                chunk_shape=(8, 8, 8))
    full = repro.decompress(blob)
    for _ in range(25):
        parts = [_valid_axis_spec(rng, 24) for _ in range(3)]
        spec = ",".join(p[0] for p in parts)
        got = repro.read_region(blob, spec)
        assert np.array_equal(got, full[tuple(p[1] for p in parts)]), spec


# ---------------------------------------------------------------------------
# Malformed inputs: always ValueError, never a crash
# ---------------------------------------------------------------------------

_GARBAGE_TOKENS = ["x", "1x", "x1", "1.5", "0x10", "1e3", "--", "🙂", " - ",
                   "None", "nan", "inf", "(1)", "[2]", "1 2", "'3'"]


def _malformed_string_spec(rng) -> str:
    """Draw from templates that are malformed by construction."""
    kind = rng.choice(["stride", "negative", "garbage", "empty_axis",
                       "too_many_colons", "float", "bare_empty"])
    if kind == "stride":
        step = int(rng.choice([-3, -1, 0, 2, 5]))
        return f"{rng.integers(0, 9)}:{rng.integers(0, 9)}:{step}"
    if kind == "negative":
        lo = -int(rng.integers(1, 9))
        if rng.integers(0, 2):
            return f"{lo}:{rng.integers(0, 9)}"
        return str(lo)
    if kind == "garbage":
        token = str(rng.choice(_GARBAGE_TOKENS))
        side = rng.choice(["lone", "start", "stop"])
        if side == "lone":
            return token
        if side == "start":
            return f"{token}:{rng.integers(0, 9)}"
        return f"{rng.integers(0, 9)}:{token}"
    if kind == "empty_axis":
        return f"{rng.integers(0, 9)}:{rng.integers(0, 9)},,:"
    if kind == "too_many_colons":
        return ":".join(str(int(rng.integers(0, 9)))
                        for _ in range(int(rng.integers(4, 7))))
    if kind == "float":
        return f"{rng.uniform(0, 9):.2f}:{rng.integers(0, 9)}"
    return ""  # bare_empty: "" has one empty axis field


def test_malformed_string_specs_always_valueerror():
    rng = np.random.default_rng(SEED + 3)
    shape = (8, 8, 8)
    for _ in range(N_MALFORMED):
        spec = _malformed_string_spec(rng)
        with pytest.raises(ValueError):
            bounds = api.normalize_region(repro.parse_region(spec), shape)
            raise AssertionError(  # pragma: no cover - reached only on a bug
                f"malformed spec {spec!r} was accepted as {bounds}")


def test_malformed_tuple_regions_always_valueerror():
    rng = np.random.default_rng(SEED + 4)
    shape = (6, 7, 8)
    bad_entries = [
        slice(0, 4, 2), slice(None, None, 0), slice(None, None, -1),
        slice(-2, 4), slice(1, -1), -3, slice(0.5, 3), slice(0, 2.5),
        slice("a", 3), 1.5, "3", None, (1, 2), [0, 2],
        slice(0, np.float64(2.5)),
    ]
    for _ in range(N_MALFORMED):
        region = [slice(0, int(rng.integers(1, 6))) for _ in shape]
        n_bad = int(rng.integers(1, 3))
        for _ in range(n_bad):
            axis = int(rng.integers(0, len(shape)))
            region[axis] = bad_entries[int(rng.integers(0, len(bad_entries)))]
        with pytest.raises(ValueError):
            api.normalize_region(tuple(region), shape)


def test_structural_errors():
    with pytest.raises(ValueError, match="axes"):
        api.normalize_region((slice(0, 1),) * 4, (4, 4))  # too many axes
    with pytest.raises(ValueError):
        repro.parse_region("")
    with pytest.raises(ValueError):
        repro.parse_region(",")
    with pytest.raises(ValueError):
        repro.parse_region("1:2,")
    # Ints promote, numpy integer scalars too; numpy floats never.
    assert api.normalize_region((np.int64(2),), (5,)) == ((2, 3),)
    with pytest.raises(ValueError):
        api.normalize_region((np.float32(2.0),), (5,))


def test_fuzz_seed_is_reproducible():
    """Two runs at one seed draw identical sequences (CI can bisect a seed)."""
    a = [_malformed_string_spec(np.random.default_rng(99)) for _ in range(10)]
    b = [_malformed_string_spec(np.random.default_rng(99)) for _ in range(10)]
    assert a == b

"""Tests for the benchmark-results report aggregator."""

import pytest

from repro.analysis.report import (
    SECTION_TITLES,
    generate_report,
    read_results_csv,
    write_report,
)


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "table1_ae_types.csv").write_text(
        "ae_type,prediction_psnr_db\nSWAE,43.9\nWAE,42.4\n")
    (tmp_path / "fig10_ae_block_ratio.csv").write_text(
        "field,error_bound,ae_block_fraction\nCESM-CLDHGH,0.01,0.5\n")
    return tmp_path


class TestReadCsv:
    def test_reads_rows_as_dicts(self, results_dir):
        rows = read_results_csv(results_dir / "table1_ae_types.csv")
        assert rows[0]["ae_type"] == "SWAE"
        assert len(rows) == 2


class TestGenerateReport:
    def test_contains_sections_for_present_csvs_only(self, results_dir):
        report = generate_report(results_dir)
        assert "Table I" in report
        assert "Fig. 10" in report
        assert "Fig. 8" not in report  # CSV not present

    def test_contains_table_rows(self, results_dir):
        report = generate_report(results_dir)
        assert "| SWAE | 43.9 |" in report

    def test_row_truncation(self, results_dir):
        (results_dir / "fig8_rate_distortion.csv").write_text(
            "field,psnr_db\n" + "\n".join(f"f{i},{i}" for i in range(50)))
        report = generate_report(results_dir, max_rows_per_table=10)
        assert "more rows in the CSV" in report

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            generate_report(tmp_path / "nope")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            generate_report(tmp_path)

    def test_every_known_section_has_title(self):
        assert all(title for title in SECTION_TITLES.values())


class TestWriteReport:
    def test_writes_file(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "sub" / "REPORT.md")
        assert out.exists()
        assert "AE-SZ reproduction results" in out.read_text()

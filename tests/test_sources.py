"""The ByteSource seam: HTTP range reads, retry/backoff, spill cache, federation.

Acceptance (ISSUE 10): ``repro.read_region(url, region)`` and an
``ArchiveStore`` entry backed by :class:`HttpByteSource` return bytes
bit-identical to local decode of the same archive, under injected transient
faults, with only O(header + region tiles) bytes fetched.

Everything runs against an in-process stdlib range server with a fault
queue — no external network.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
from repro import api
from repro.encoding.container import FRONT_PREFIX
from repro.sources import (
    BytesByteSource,
    CachingByteSource,
    FileByteSource,
    HttpByteSource,
    HttpSourceError,
    RetryPolicy,
    is_url,
    open_source,
)
from repro.sources.http import parse_content_range
from repro.store import ArchiveStore, make_server

BOUND = 1e-3
CODEC = "szinterp"
SIDE, TILE = 32, 8  # 4x4 = 16 tiles


def fast_retry(attempts: int = 4) -> RetryPolicy:
    return RetryPolicy(attempts, sleep=lambda _s: None)


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(11)
    return rng.standard_normal((SIDE, SIDE)).cumsum(axis=0)


@pytest.fixture(scope="module")
def grid_blob(field):
    return api.compress_chunked(field, codec=CODEC, bound=BOUND,
                                chunk_shape=(TILE, TILE))


@pytest.fixture(scope="module")
def chunked_blob(field):
    return api.compress_chunked(field, codec=CODEC, bound=BOUND,
                                chunk_size=TILE * SIDE)


@pytest.fixture(scope="module")
def v1_blob(field):
    return repro.compress(field, codec=CODEC, bound=BOUND)


REGION = (slice(3, 13), slice(5, 21))  # crosses tile boundaries both ways


# ---------------------------------------------------------------------------
# The in-process range server with fault injection
# ---------------------------------------------------------------------------

class _RangeHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        server = self.server
        with server.lock:
            server.requests.append((self.path, self.headers.get("Range")))
            fault = server.faults.pop(0) if server.faults else None
        blob = server.files.get(self.path)
        if blob is None:
            self._send_status(404, b"not here")
            return
        if fault == "503":
            self._send_status(503, b"try later")
            return
        if fault == "drop":
            # Die before any response bytes: the client sees a reset/EOF.
            self.close_connection = True
            self.connection.close()
            return
        range_header = self.headers.get("Range")
        if range_header is None or fault == "ignore_range":
            self._send_body(200, blob, {"ETag": '"range-fixture"'})
            return
        try:
            spec = range_header.split("=", 1)[1]
            start_text, end_text = spec.split("-", 1)
            start = int(start_text)
            end = int(end_text) if end_text else len(blob) - 1
        except (IndexError, ValueError):
            self._send_status(400, b"bad range")
            return
        end = min(end, len(blob) - 1)
        if start >= len(blob):
            self._send_status(
                416, b"", {"Content-Range": f"bytes */{len(blob)}"})
            return
        body = blob[start:end + 1]
        headers = {"Content-Range": f"bytes {start}-{end}/{len(blob)}",
                   "ETag": '"range-fixture"'}
        if fault == "bad_content_range":
            headers["Content-Range"] = \
                f"bytes {start + 1}-{end + 1}/{len(blob)}"
        if fault == "short_body":
            # Promise the full range, deliver half, kill the connection.
            self._send_body(206, body, headers, truncate=len(body) // 2)
            self.close_connection = True
            self.connection.close()
            return
        self._send_body(206, body, headers)

    def _send_status(self, code: int, message: bytes, headers=None) -> None:
        self.send_response(code)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(message)))
        self.end_headers()
        self.wfile.write(message)

    def _send_body(self, code: int, body: bytes, headers=None,
                   truncate=None) -> None:
        self.send_response(code)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body if truncate is None else body[:truncate])
        self.wfile.flush()

    def log_message(self, fmt, *args) -> None:
        pass


class RangeServer:
    """An in-process HTTP range server with a FIFO fault-injection queue."""

    def __init__(self) -> None:
        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0), _RangeHandler)
        self.httpd.daemon_threads = True
        self.httpd.files = {}
        self.httpd.faults = []
        self.httpd.requests = []
        self.httpd.lock = threading.Lock()
        self.thread = threading.Thread(target=self.httpd.serve_forever,
                                       daemon=True)
        self.thread.start()
        host, port = self.httpd.server_address[:2]
        self.base = f"http://{host}:{port}"

    def publish(self, path: str, blob: bytes) -> str:
        with self.httpd.lock:
            self.httpd.files[path] = bytes(blob)
        return self.base + path

    def inject(self, *faults: str) -> None:
        with self.httpd.lock:
            self.httpd.faults.extend(faults)

    def reset(self) -> None:
        with self.httpd.lock:
            self.httpd.faults.clear()
            self.httpd.requests.clear()

    @property
    def request_count(self) -> int:
        with self.httpd.lock:
            return len(self.httpd.requests)

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(timeout=5)


@pytest.fixture(scope="module")
def range_server():
    server = RangeServer()
    yield server
    server.close()


@pytest.fixture()
def served(range_server, grid_blob):
    url = range_server.publish("/grid.rpra", grid_blob)
    range_server.reset()
    return url


# ---------------------------------------------------------------------------
# Local sources: dispatch, close(), short-read loop, truncation
# ---------------------------------------------------------------------------

class TestLocalSources:
    def test_open_source_dispatch(self, tmp_path, grid_blob, served):
        path = tmp_path / "a.rpra"
        path.write_bytes(grid_blob)
        assert isinstance(open_source(grid_blob), BytesByteSource)
        assert isinstance(open_source(str(path)), FileByteSource)
        assert isinstance(open_source(path), FileByteSource)
        with open_source(served) as src:
            assert isinstance(src, HttpByteSource)
        existing = BytesByteSource(grid_blob)
        assert open_source(existing) is existing
        with pytest.raises(TypeError, match="bytes or a path"):
            open_source(12345)

    def test_is_url(self):
        assert is_url("http://x/y.rpra") and is_url("https://x/y")
        assert not is_url("/data/http/file.rpra") and not is_url(b"http://")

    def test_file_reader_has_close(self, tmp_path, grid_blob):
        """Regression: api._FileReader leaked handles for non-with callers."""
        path = tmp_path / "a.rpra"
        path.write_bytes(grid_blob)
        reader = api._FileReader(str(path))
        assert reader.read_at(0, 4) == grid_blob[:4]
        reader.close()
        reader.close()  # idempotent
        with pytest.raises(OSError):
            reader.read_at(0, 4)

    def test_file_reader_short_read_loop(self, tmp_path, grid_blob,
                                         monkeypatch):
        """Regression: one os.pread may return short; the loop must refill."""
        path = tmp_path / "a.rpra"
        path.write_bytes(grid_blob)
        import os as _os
        real_pread = _os.pread
        calls = []

        def dribble(fd, length, offset):
            calls.append(length)
            return real_pread(fd, min(length, 7), offset)

        monkeypatch.setattr("repro.sources.base.os.pread", dribble)
        with FileByteSource(str(path)) as src:
            assert src.read_at(0, 100) == grid_blob[:100]
        assert len(calls) > 1  # the loop actually refilled

    def test_file_reader_is_thread_safe(self, tmp_path, grid_blob):
        path = tmp_path / "a.rpra"
        path.write_bytes(grid_blob)
        with FileByteSource(str(path)) as src:
            def read(seed):
                offset = (seed * 97) % (len(grid_blob) - 64)
                return offset, src.read_at(offset, 64)
            with ThreadPoolExecutor(8) as pool:
                for offset, got in pool.map(read, range(64)):
                    assert got == grid_blob[offset:offset + 64]

    def test_bytes_read_counter_still_works(self, tmp_path, grid_blob):
        path = tmp_path / "a.rpra"
        path.write_bytes(grid_blob)
        with api.open_reader(str(path)) as reader:
            reader.read_at(0, 10)
            reader.read_at(100, 20)
            assert reader.bytes_read == 30

    @pytest.mark.parametrize("cut", [0, 1, 3, 5, FRONT_PREFIX - 1])
    def test_truncated_prefix_bytes(self, grid_blob, cut):
        with pytest.raises(ValueError, match="corrupt archive"):
            api.load_index(api.open_reader(grid_blob[:cut]))

    @pytest.mark.parametrize("cut", [0, 1, 5, FRONT_PREFIX - 1])
    def test_truncated_prefix_file(self, tmp_path, grid_blob, cut):
        path = tmp_path / f"cut{cut}.rpra"
        path.write_bytes(grid_blob[:cut])
        with api.open_reader(str(path)) as reader:
            with pytest.raises(ValueError, match="corrupt archive"):
                api.load_index(reader)

    @pytest.mark.parametrize("cut", [0, 2, 6, FRONT_PREFIX - 1])
    def test_truncated_prefix_http(self, range_server, grid_blob, cut):
        url = range_server.publish(f"/cut{cut}.rpra", grid_blob[:cut])
        with HttpByteSource(url, retry=fast_retry()) as src:
            with pytest.raises(ValueError, match="corrupt archive"):
                api.load_index(src)

    def test_truncated_mid_header(self, grid_blob):
        # Inside the JSON header (past the fixed prefix): still a clean error.
        with pytest.raises(ValueError, match="corrupt archive"):
            api.load_index(api.open_reader(grid_blob[:FRONT_PREFIX + 3]))


# ---------------------------------------------------------------------------
# HttpByteSource against the fixture server
# ---------------------------------------------------------------------------

class TestHttpByteSource:
    def test_read_region_bit_identical(self, served, grid_blob, field):
        remote = repro.read_region(served, REGION)
        local = repro.read_region(grid_blob, REGION)
        assert remote.dtype == local.dtype
        assert np.array_equal(remote, local)

    def test_v1_and_v2_archives(self, range_server, v1_blob, chunked_blob):
        for name, blob in (("/v1.rpra", v1_blob), ("/v2.rpra", chunked_blob)):
            url = range_server.publish(name, blob)
            assert np.array_equal(repro.read_region(url, REGION),
                                  repro.read_region(blob, REGION))

    def test_o_header_plus_tiles_io(self, served, grid_blob, range_server):
        """Only the front matter + intersecting tiles travel the wire."""
        index = repro.read_header(grid_blob)
        tiles = index.region_tiles(api.normalize_region(REGION, index.shape))
        with HttpByteSource(served, retry=fast_retry()) as src:
            arr = repro.read_region(src, REGION)
        stats = src.stats()
        # prefix + header json + one request per tile (no coalescing yet),
        # plus at most one 1-byte size probe
        assert 2 + len(tiles) <= stats["range_requests"] <= 3 + len(tiles)
        assert stats["retried"] == 0
        tile_bytes = sum(index.lengths[i] for i in tiles)
        header_bytes = index.data_start
        assert stats["bytes_fetched"] <= \
            header_bytes + tile_bytes + FRONT_PREFIX + 1
        assert stats["bytes_fetched"] < len(grid_blob) // 2
        assert np.array_equal(arr, repro.read_region(grid_blob, REGION))

    def test_503_then_succeed(self, served, grid_blob, range_server):
        range_server.inject("503")
        with HttpByteSource(served, retry=fast_retry()) as src:
            assert np.array_equal(repro.read_region(src, REGION),
                                  repro.read_region(grid_blob, REGION))
            assert src.stats()["retried"] == 1

    def test_drop_before_response(self, served, grid_blob, range_server):
        range_server.inject("drop", "503")
        with HttpByteSource(served, retry=fast_retry()) as src:
            assert np.array_equal(repro.read_region(src, REGION),
                                  repro.read_region(grid_blob, REGION))
            assert src.stats()["retried"] == 2

    def test_drop_mid_body(self, served, grid_blob, range_server):
        range_server.inject("short_body")
        with HttpByteSource(served, retry=fast_retry()) as src:
            assert np.array_equal(repro.read_region(src, REGION),
                                  repro.read_region(grid_blob, REGION))
            assert src.stats()["retried"] == 1

    def test_retries_exhausted(self, served, range_server):
        policy = fast_retry(3)
        range_server.inject(*["503"] * 3)
        with HttpByteSource(served, retry=policy) as src:
            with pytest.raises(HttpSourceError, match="after 3 attempts"):
                src.read_at(0, 16)
            assert src.stats()["retried"] == 2  # attempts - 1

    def test_wrong_content_range_is_permanent(self, served, range_server):
        range_server.inject("bad_content_range")
        with HttpByteSource(served, retry=fast_retry()) as src:
            with pytest.raises(HttpSourceError, match="Content-Range"):
                src.read_at(0, 16)
            assert src.stats()["retried"] == 0  # not retried: permanent

    def test_200_fallback_refused(self, served, range_server):
        """A server ignoring Range must NOT trigger a silent full download."""
        range_server.reset()
        range_server.inject("ignore_range")
        with HttpByteSource(served, retry=fast_retry()) as src:
            with pytest.raises(HttpSourceError,
                               match="ignored Range|whole archive"):
                src.read_at(0, 16)
        assert range_server.request_count == 1  # gave up immediately

    def test_read_past_eof_and_416(self, served, grid_blob):
        with HttpByteSource(served, retry=fast_retry()) as src:
            assert src.read_at(len(grid_blob) + 10, 4) == b""
            assert src.size == len(grid_blob)  # learned from the 416
            assert src.read_at(0, 0) == b""

    def test_read_all_roundtrip(self, served, grid_blob):
        with HttpByteSource(served, retry=fast_retry()) as src:
            assert src.read_all() == grid_blob

    def test_content_token_stable(self, served):
        with HttpByteSource(served) as a, HttpByteSource(served) as b:
            assert a.content_token == b.content_token

    def test_closed_source_rejects_reads(self, served):
        src = HttpByteSource(served)
        src.close()
        with pytest.raises(ValueError, match="closed"):
            src.read_at(0, 4)

    def test_bad_urls_rejected(self):
        with pytest.raises(ValueError, match="unsupported archive URL"):
            HttpByteSource("ftp://host/x.rpra")

    def test_parse_content_range(self):
        assert parse_content_range("bytes 0-9/100") == (0, 9, 100)
        assert parse_content_range("bytes 5-5/*") == (5, 5, None)
        for bad in ("bytes */100", "items 0-9/10", "bytes 9-5/10",
                    "bytes 0-10/10", "garbage"):
            with pytest.raises(HttpSourceError):
                parse_content_range(bad)

    def test_retry_policy_backoff_shape(self):
        policy = RetryPolicy(5, base_delay=0.1, max_delay=0.4, jitter=0.0,
                             sleep=lambda _s: None)
        assert [policy.delay(i) for i in range(4)] == [0.1, 0.2, 0.4, 0.4]
        jittered = RetryPolicy(3, base_delay=1.0, jitter=0.5)
        for _ in range(50):
            assert 0.5 <= jittered.delay(0) <= 1.0
        with pytest.raises(ValueError):
            RetryPolicy(0)


# ---------------------------------------------------------------------------
# CachingByteSource: spill hits, persistence, eviction, single-flight
# ---------------------------------------------------------------------------

class TestSpillCache:
    def test_cold_then_warm(self, served, grid_blob, tmp_path, range_server):
        with CachingByteSource(HttpByteSource(served, retry=fast_retry()),
                               tmp_path / "spill") as src:
            first = repro.read_region(src, REGION)
            after_cold = src.stats()
            assert after_cold["spill_misses"] > 0
            requests_cold = after_cold["range_requests"]
            second = repro.read_region(src, REGION)
            warm = src.stats()
        assert np.array_equal(first, second)
        assert np.array_equal(first, repro.read_region(grid_blob, REGION))
        assert warm["range_requests"] == requests_cold  # no new HTTP traffic
        assert warm["spill_hits"] >= after_cold["spill_misses"]

    def test_persists_across_instances(self, served, tmp_path, grid_blob):
        spill = tmp_path / "spill"
        with CachingByteSource(HttpByteSource(served, retry=fast_retry()),
                               spill) as src:
            repro.read_region(src, REGION)
        with CachingByteSource(HttpByteSource(served, retry=fast_retry()),
                               spill) as src:
            arr = repro.read_region(src, REGION)
            stats = src.stats()
        assert np.array_equal(arr, repro.read_region(grid_blob, REGION))
        # Tile ranges came back from disk; only the probe that resolves the
        # content token (plus the header reads) touched the network.
        assert stats["spill_hits"] > 0
        assert stats["spill_misses"] == 0

    def test_lru_eviction_under_budget(self, tmp_path, grid_blob):
        src = CachingByteSource(BytesByteSource(grid_blob),
                                tmp_path / "spill", max_bytes=64)
        for offset in range(0, 256, 32):
            src.read_at(offset, 32)
        stats = src.stats()
        assert stats["spill_evictions"] >= 6
        assert stats["spill_nbytes"] <= 64
        files = list((tmp_path / "spill").iterdir())
        assert len(files) <= 2

    def test_single_flight(self, served, tmp_path):
        inner = HttpByteSource(served, retry=fast_retry())
        src = CachingByteSource(inner, tmp_path / "spill")
        src.read_at(0, 1)  # resolve size/token before the stampede
        base = inner.stats()["range_requests"]
        barrier = threading.Barrier(8)

        def hammer(_i):
            barrier.wait()
            return src.read_at(4096, 512)

        with ThreadPoolExecutor(8) as pool:
            results = list(pool.map(hammer, range(8)))
        assert len({bytes(r) for r in results}) == 1
        assert inner.stats()["range_requests"] == base + 1  # one fetch total
        src.close()

    def test_vanished_file_refetches(self, tmp_path, grid_blob):
        spill = tmp_path / "spill"
        src = CachingByteSource(BytesByteSource(grid_blob), spill)
        first = src.read_at(10, 50)
        for spilled in spill.iterdir():
            spilled.unlink()  # external cleanup under our feet
        assert src.read_at(10, 50) == first
        assert src.stats()["spill_misses"] == 2

    def test_requires_token(self, tmp_path):
        class Tokenless:
            size = 4

            def read_at(self, offset, length):
                return b"abcd"[offset:offset + length]

            def read_all(self):
                return b"abcd"

            def close(self):
                pass

        src = CachingByteSource(Tokenless(), tmp_path / "spill")
        with pytest.raises(ValueError, match="content_token"):
            src.read_at(0, 2)
        with_token = CachingByteSource(Tokenless(), tmp_path / "spill",
                                       token="explicit")
        assert with_token.read_at(0, 2) == b"ab"


# ---------------------------------------------------------------------------
# Store + server integration: URLs end to end, /archive route, federation
# ---------------------------------------------------------------------------

class TestStoreIntegration:
    def test_store_add_url(self, served, grid_blob):
        with ArchiveStore() as store:
            store.add("remote", served)
            local = repro.read_region(grid_blob, REGION)
            assert np.array_equal(store.read_region("remote", REGION), local)
            remote = store.remote_stats()
            assert remote["sources"] == 1
            assert 0 < remote["bytes_fetched"] < len(grid_blob)

    def test_store_url_with_spill(self, served, grid_blob, tmp_path):
        local = repro.read_region(grid_blob, REGION)
        # cache_bytes=0 forces every read through the byte source, so the
        # second pass must be served by the disk spill, not the tile LRU.
        with ArchiveStore(cache_bytes=0, spill_dir=tmp_path / "spill") as store:
            store.add("remote", served)
            assert np.array_equal(store.read_region("remote", REGION), local)
            cold = store.remote_stats()
            assert np.array_equal(store.read_region("remote", REGION), local)
            warm = store.remote_stats()
        assert warm["range_requests"] == cold["range_requests"]
        assert warm["spill_hits"] > cold["spill_hits"]

    def test_store_faulty_url_still_bit_identical(self, served, grid_blob,
                                                  range_server):
        source = HttpByteSource(served, retry=fast_retry())
        with ArchiveStore(cache_bytes=0) as store:
            store.add("remote", source)
            range_server.inject("503", "short_body")
            arr = store.read_region("remote", REGION)
            assert np.array_equal(arr, repro.read_region(grid_blob, REGION))
            assert store.remote_stats()["retried"] == 2

    def test_archive_route_serves_ranges(self, grid_blob):
        with ArchiveStore() as store:
            store.add("k", grid_blob)
            server = make_server(store, server="threaded")
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                url = f"{server.url}/v1/k/archive"
                with HttpByteSource(url, retry=fast_retry()) as src:
                    assert src.size == len(grid_blob)
                    assert src.read_at(10, 64) == grid_blob[10:74]
                    assert src.read_at(len(grid_blob) + 5, 4) == b""
                    assert np.array_equal(
                        repro.read_region(src, REGION),
                        repro.read_region(grid_blob, REGION))
            finally:
                server.shutdown()
                server.server_close()

    def test_one_node_fronts_another(self, grid_blob):
        """Node B serves node A's archive via the /archive byte source."""
        with ArchiveStore() as store_a, ArchiveStore() as store_b:
            store_a.add("k", grid_blob)
            server_a = make_server(store_a, server="threaded")
            thread = threading.Thread(target=server_a.serve_forever,
                                      daemon=True)
            thread.start()
            try:
                store_b.add("k", f"{server_a.url}/v1/k/archive")
                assert np.array_equal(
                    store_b.read_region("k", REGION),
                    repro.read_region(grid_blob, REGION))
                assert store_b.remote_stats()["sources"] == 1
            finally:
                server_a.shutdown()
                server_a.server_close()

    def test_federation_proxy(self, grid_blob, field):
        """A node proxies GET region/info for keys a peer owns."""
        with ArchiveStore() as store_a, ArchiveStore() as store_b:
            store_a.add("owned-by-a", grid_blob)
            server_a = make_server(store_a, server="threaded")
            thread_a = threading.Thread(target=server_a.serve_forever,
                                        daemon=True)
            thread_a.start()
            server_b = make_server(store_b, server="threaded",
                                   peers=[server_a.url])
            thread_b = threading.Thread(target=server_b.serve_forever,
                                        daemon=True)
            thread_b.start()
            try:
                spec = "3:13,5:21"
                with HttpByteSource(
                        f"{server_b.url}/v1/owned-by-a/archive",
                        retry=fast_retry()) as src:
                    assert src.read_all() == grid_blob
                import json as _json
                from urllib.request import urlopen
                with urlopen(f"{server_b.url}/v1/owned-by-a/region?r={spec}"
                             ) as resp:
                    assert resp.status == 200
                    meta = _json.loads(resp.headers["X-Repro-Header"])
                    body = resp.read()
                arr = np.frombuffer(body, dtype=meta["dtype"]).reshape(
                    meta["shape"])
                assert np.array_equal(
                    arr, repro.read_region(grid_blob, REGION))
                with urlopen(f"{server_b.url}/metrics") as resp:
                    metrics = _json.loads(resp.read())
                assert metrics["federation"]["proxied"] >= 2
                assert metrics["federation"]["peers"] == [server_a.url]
            finally:
                server_b.shutdown()
                server_b.server_close()
                server_a.shutdown()
                server_a.server_close()

    def test_federation_loop_guard(self, grid_blob):
        """A node whose peer list points back at itself answers 404, not loops."""
        with ArchiveStore() as store:
            server = make_server(store, server="threaded")
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            server.app._peers = [server.app._parse_peer(server.url)]
            try:
                import json as _json
                from urllib.error import HTTPError
                from urllib.request import urlopen
                with pytest.raises(HTTPError) as err:
                    urlopen(f"{server.url}/v1/nope/info")
                assert err.value.code == 404
                assert "nope" in _json.loads(err.value.read())["error"]
            finally:
                server.shutdown()
                server.server_close()


# ---------------------------------------------------------------------------
# Client retry/backoff (satellite: push_field / delete_key)
# ---------------------------------------------------------------------------

class TestClientRetry:
    def test_delete_retries_transient_5xx(self, monkeypatch):
        from repro.store import client

        calls = []

        class _Resp:
            def __init__(self, status):
                self.status = status
                self.reason = "x"

            def read(self):
                return b'{"deleted": "k", "generation": 3}' \
                    if self.status == 200 else b'{"error": "busy"}'

        class _Conn:
            def __init__(self):
                self.n = len(calls)

            def request(self, *a, **k):
                calls.append(a)

            def getresponse(self):
                return _Resp(503 if len(calls) == 1 else 200)

            def close(self):
                pass

        monkeypatch.setattr(client, "_connect",
                            lambda url, timeout: (_Conn(), ""))
        payload = client.delete_key("http://x", "k", retry=fast_retry())
        assert payload["deleted"] == "k"
        assert len(calls) == 2  # one 503, one success

    def test_delete_does_not_retry_permanent(self, monkeypatch):
        from repro.store import client

        calls = []

        class _Resp:
            status, reason = 401, "nope"

            def read(self):
                return b'{"error": "token required"}'

        class _Conn:
            def request(self, *a, **k):
                calls.append(a)

            def getresponse(self):
                return _Resp()

            def close(self):
                pass

        monkeypatch.setattr(client, "_connect",
                            lambda url, timeout: (_Conn(), ""))
        with pytest.raises(client.PushError, match="401"):
            client.delete_key("http://x", "k", retry=fast_retry())
        assert len(calls) == 1

    def test_delete_retries_connection_error(self, monkeypatch):
        from repro.store import client

        attempts = []
        real_connect = client._connect

        class _Conn:
            def request(self, *a, **k):
                raise ConnectionResetError("boom")

            def close(self):
                pass

        class _OkConn:
            def request(self, *a, **k):
                pass

            def getresponse(self):
                class _R:
                    status, reason = 200, "OK"

                    def read(self):
                        return b'{"deleted": "k", "generation": 1}'
                return _R()

            def close(self):
                pass

        def flaky(url, timeout):
            attempts.append(1)
            return (_Conn() if len(attempts) == 1 else _OkConn()), ""

        monkeypatch.setattr(client, "_connect", flaky)
        payload = client.delete_key("http://x", "k", retry=fast_retry())
        assert payload["deleted"] == "k"
        assert len(attempts) == 2

    def test_delete_exhausts_attempts(self, monkeypatch):
        from repro.store import client

        class _Conn:
            def request(self, *a, **k):
                raise ConnectionResetError("boom")

            def close(self):
                pass

        monkeypatch.setattr(client, "_connect",
                            lambda url, timeout: (_Conn(), ""))
        with pytest.raises(OSError, match="after 2 attempts"):
            client.delete_key("http://x", "k", retry=fast_retry(2))

    def test_push_retries_connect_only(self, monkeypatch):
        """Connection establishment retries; nothing after body bytes does."""
        from repro.store import client

        connects = []

        class _FailConn:
            def connect(self):
                raise ConnectionRefusedError("not yet")

            def close(self):
                pass

        monkeypatch.setattr(
            client, "_connect",
            lambda url, timeout: (connects.append(1) or _FailConn(), ""))
        field = np.zeros((4, 4), dtype=np.float32)
        with pytest.raises(OSError, match="cannot connect"):
            client.push_field("http://x", "k", field, retry=fast_retry(3))
        assert len(connects) == 3

    def test_push_body_fault_not_retried(self, monkeypatch):
        from repro.store import client

        requests = []

        class _Conn:
            def connect(self):
                pass

            def request(self, *a, **k):
                requests.append(1)
                raise OSError("mid-body failure")

            def close(self):
                pass

        monkeypatch.setattr(client, "_connect",
                            lambda url, timeout: (_Conn(), ""))
        field = np.zeros((4, 4), dtype=np.float32)
        with pytest.raises(OSError, match="mid-body"):
            client.push_field("http://x", "k", field, retry=fast_retry(4))
        assert len(requests) == 1  # never replayed after first body byte

"""ArchiveStore + TileCache: thread safety, caching contract, stress harness.

Acceptance (ISSUE 5): N threads hammering one store over mixed overlapping
regions produce results bit-identical to cold single-threaded
``repro.read_region``, and the store's decode counter proves each tile
decodes at most once per cache residency (single-flight loading).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
from repro import api
from repro.store import ArchiveStore, TileCache

CODEC = "szinterp"
BOUND = 1e-3
SIDE, TILE = 48, 16  # 3x3x3 = 27 tiles


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(7)
    return rng.standard_normal((SIDE, SIDE, SIDE)).cumsum(axis=0)


@pytest.fixture(scope="module")
def grid_blob(field):
    return api.compress_chunked(field, codec=CODEC, bound=BOUND,
                                chunk_shape=(TILE, TILE, TILE))


@pytest.fixture()
def grid_path(grid_blob, tmp_path):
    path = tmp_path / "grid.rpra"
    path.write_bytes(grid_blob)
    return str(path)


# Mixed, mutually overlapping regions: tile-interior, cross-boundary, slab,
# plane, corner, empty — together they revisit tiles from many requests.
REGIONS = [
    (slice(2, 14), slice(2, 14), slice(2, 14)),
    (slice(12, 20), slice(12, 20), slice(12, 20)),
    (slice(0, 32), slice(0, 16), slice(0, 16)),
    (slice(8, 24), slice(0, SIDE), slice(0, 8)),
    (slice(0, SIDE), slice(16, 17), slice(0, SIDE)),
    (slice(SIDE - 16, SIDE), slice(SIDE - 16, SIDE), slice(SIDE - 16, SIDE)),
    (slice(5, 5), slice(0, SIDE), slice(0, SIDE)),  # empty
]


def _distinct_tiles(path, regions):
    index = repro.read_header(path)
    return {i for r in regions
            for i in index.region_tiles(api.normalize_region(r, index.shape))}


# ---------------------------------------------------------------------------
# TileCache unit behaviour
# ---------------------------------------------------------------------------

class TestTileCache:
    def test_lru_eviction_by_bytes(self):
        cache = TileCache(max_bytes=3 * 80)  # three 10-float64 arrays
        arrs = {k: np.full(10, k, dtype=np.float64) for k in range(4)}
        for k in range(3):
            cache.put(k, arrs[k])
        assert len(cache) == 3 and cache.nbytes == 240
        cache.get(0)           # 0 becomes most recently used
        cache.put(3, arrs[3])  # evicts 1 (least recently used), not 0
        assert 0 in cache and 3 in cache and 1 not in cache
        assert cache.evictions == 1 and cache.nbytes == 240

    def test_oversized_entry_served_but_not_cached(self):
        cache = TileCache(max_bytes=8)
        big = np.zeros(100)
        got = cache.get_or_load("k", lambda: big)
        assert np.array_equal(got, big)
        assert cache.loads == 1                      # the loader did run...
        assert len(cache) == 0 and cache.nbytes == 0  # ...nothing resident

    def test_zero_budget_caches_nothing(self):
        cache = TileCache(max_bytes=0)
        calls = []
        for _ in range(2):
            cache.get_or_load("k", lambda: (calls.append(1), np.ones(4))[1])
        assert len(calls) == 2 and len(cache) == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            TileCache(max_bytes=-1)

    def test_entries_are_frozen(self):
        cache = TileCache()
        arr = cache.get_or_load("k", lambda: np.ones(4))
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[0] = 2.0

    def test_single_flight_under_contention(self):
        """Two threads racing on one key run the loader exactly once."""
        cache = TileCache()
        loader_entered = threading.Event()
        release_loader = threading.Event()
        loads = []

        def loader():
            loads.append(threading.get_ident())
            loader_entered.set()
            assert release_loader.wait(5)
            return np.arange(8.0)

        with ThreadPoolExecutor(max_workers=2) as pool:
            f1 = pool.submit(cache.get_or_load, "k", loader)
            assert loader_entered.wait(5)       # owner is inside the loader
            f2 = pool.submit(cache.get_or_load, "k", loader)
            release_loader.set()
            a1, a2 = f1.result(5), f2.result(5)
        assert len(loads) == 1                  # one decode, shared result
        assert a1 is a2
        assert cache.loads == 1 and cache.hits >= 1

    def test_failed_load_not_cached_and_propagates_to_waiters(self):
        cache = TileCache()
        loader_entered = threading.Event()
        release_loader = threading.Event()

        def failing():
            loader_entered.set()
            assert release_loader.wait(5)
            raise ValueError("corrupt archive: synthetic")

        with ThreadPoolExecutor(max_workers=2) as pool:
            f1 = pool.submit(cache.get_or_load, "k", failing)
            assert loader_entered.wait(5)
            f2 = pool.submit(cache.get_or_load, "k", failing)
            release_loader.set()
            for f in (f1, f2):
                with pytest.raises(ValueError, match="corrupt"):
                    f.result(5)
        # The key is clean again: a subsequent good load succeeds.
        got = cache.get_or_load("k", lambda: np.ones(2))
        assert np.array_equal(got, np.ones(2)) and "k" in cache

    def test_stats_snapshot(self):
        cache = TileCache()
        cache.get_or_load("a", lambda: np.ones(4))
        cache.get_or_load("a", lambda: np.ones(4))
        stats = cache.stats()
        assert stats["loads"] == 1 and stats["hits"] == 1
        assert stats["misses"] == 1 and stats["entries"] == 1
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0


# ---------------------------------------------------------------------------
# ArchiveStore behaviour
# ---------------------------------------------------------------------------

class TestArchiveStore:
    def test_reads_bit_identical_to_cold_path(self, grid_path):
        with ArchiveStore() as store:
            store.add("g", grid_path)
            for region in REGIONS:
                want = repro.read_region(grid_path, region)
                got = store.read_region("g", region)
                assert got.dtype == want.dtype
                assert np.array_equal(got, want), region

    def test_string_regions_and_out(self, grid_path):
        with ArchiveStore() as store:
            store.add("g", grid_path)
            want = repro.read_region(grid_path, "10:20,0:48,5:9")
            got = store.read_region("g", "10:20,0:48,5:9")
            assert np.array_equal(got, want)
            out = np.empty(want.shape, dtype=np.float64)
            assert store.read_region("g", "10:20,0:48,5:9", out=out) is out
            assert np.array_equal(out, want)
            with pytest.raises(ValueError, match="out has shape"):
                store.read_region("g", "10:20,0:48,5:9",
                                  out=np.empty((1, 1, 1)))

    def test_header_parsed_once_per_add(self, grid_path, monkeypatch):
        parses = []
        real = api.parse_front

        def counting(front):
            parses.append(1)
            return real(front)

        monkeypatch.setattr(api, "parse_front", counting)
        with ArchiveStore() as store:
            store.add("g", grid_path)
            assert len(parses) == 1
            for region in REGIONS[:4]:
                store.read_region("g", region)
            assert len(parses) == 1  # reads never re-parse the header

    def test_tiles_decode_once_across_repeats(self, grid_path):
        with ArchiveStore() as store:
            store.add("g", grid_path)
            for _ in range(3):
                for region in REGIONS:
                    store.read_region("g", region)
            distinct = _distinct_tiles(grid_path, REGIONS)
            assert store.stats()["tile_decodes"] == len(distinct)

    def test_read_regions_batched_dedupes(self, grid_path):
        with ArchiveStore() as store:
            store.add("g", grid_path)
            results = store.read_regions("g", list(REGIONS))
            for region, got in zip(REGIONS, results):
                assert np.array_equal(got, repro.read_region(grid_path, region))
            distinct = _distinct_tiles(grid_path, REGIONS)
            assert store.stats()["tile_decodes"] == len(distinct)
            # Accepts string specs too, preserving order.
            a, b = store.read_regions("g", ["0:4,0:4,0:4", "4:8,:,:"])
            assert a.shape == (4, 4, 4) and b.shape == (4, SIDE, SIDE)

    def test_bytes_source_and_v1_v2_archives(self, field, grid_blob):
        v1 = api.compress(field[:8, :8, :8], codec=CODEC, bound=BOUND)
        v2 = api.compress_chunked(field, codec=CODEC, bound=BOUND,
                                  chunk_size=SIDE * SIDE * 4)
        with ArchiveStore() as store:
            store.add("grid", grid_blob)   # bytes source, no file involved
            store.add("v1", v1)
            store.add("v2", v2)
            region = (slice(2, 7), slice(0, 8), slice(1, 3))
            assert np.array_equal(store.read_region("grid", region),
                                  repro.read_region(grid_blob, region))
            assert np.array_equal(store.read_region("v1", region),
                                  repro.read_region(v1, region))
            assert np.array_equal(store.read_region("v2", region),
                                  repro.read_region(v2, region))
            # v1 has one logical tile: repeats decode it exactly once.
            store.read_region("v1", (slice(0, 3),))
            assert store.info("v1").shape == (8, 8, 8)

    def test_empty_region_shape_and_dtype(self, grid_path):
        with ArchiveStore() as store:
            store.add("g", grid_path)
            got = store.read_region("g", (slice(5, 5),))
            assert got.shape == (0, SIDE, SIDE)
            assert got.dtype == np.float64
            assert store.stats()["tile_decodes"] == 0

    def test_key_management(self, grid_path):
        store = ArchiveStore()
        store.add("g", grid_path)
        with pytest.raises(ValueError, match="already registered"):
            store.add("g", grid_path)
        with pytest.raises(ValueError, match="non-empty string"):
            store.add("", grid_path)
        with pytest.raises(ValueError, match="must not contain '/'"):
            store.add("a/b", grid_path)
        with pytest.raises(KeyError, match="no archive registered"):
            store.read_region("nope", (slice(0, 1),))
        with pytest.raises(KeyError, match="no archive registered"):
            store.remove("nope")
        assert store.keys() == ("g",)
        store.remove("g")
        assert store.keys() == ()
        store.close()
        with pytest.raises(ValueError, match="closed"):
            store.add("g", grid_path)
        with pytest.raises(ValueError, match="closed"):
            store.read_region("g", (slice(0, 1),))

    def test_remove_purges_cached_tiles(self, grid_path):
        cache = TileCache()
        with ArchiveStore(cache=cache) as store:
            store.add("g", grid_path)
            store.read_region("g", REGIONS[2])
            assert len(cache) > 0 and cache.nbytes > 0
            store.remove("g")
            # The dead archive's tiles free immediately, not by slow eviction.
            assert len(cache) == 0 and cache.nbytes == 0

    def test_close_purges_cached_tiles_per_store(self, grid_blob):
        cache = TileCache()
        s1, s2 = ArchiveStore(cache=cache), ArchiveStore(cache=cache)
        s1.add("x", grid_blob)
        s2.add("x", grid_blob)
        s1.read_region("x", REGIONS[0])
        s2.read_region("x", REGIONS[0])
        before = len(cache)
        s1.close()
        assert 0 < len(cache) < before  # s1's tiles gone, s2's intact
        want = repro.read_region(grid_blob, REGIONS[0])
        assert np.array_equal(s2.read_region("x", REGIONS[0]), want)
        s2.close()
        assert len(cache) == 0

    def test_add_rejects_junk_before_registering(self, tmp_path):
        bad = tmp_path / "junk.rpra"
        bad.write_bytes(b"not an archive at all")
        store = ArchiveStore()
        with pytest.raises(ValueError, match="corrupt archive"):
            store.add("bad", str(bad))
        assert store.keys() == ()  # nothing half-registered
        with pytest.raises(TypeError, match="bytes or a path"):
            store.add("bad", 12345)

    def test_shared_cache_no_cross_archive_aliasing(self, field):
        """Two archives with identical content in one cache stay distinct."""
        a = api.compress_chunked(field, codec=CODEC, bound=BOUND,
                                 chunk_shape=(TILE, TILE, TILE))
        cache = TileCache()
        with ArchiveStore(cache=cache) as s1, ArchiveStore(cache=cache) as s2:
            s1.add("x", a)
            s2.add("x", a)
            region = (slice(0, 8), slice(0, 8), slice(0, 8))
            r1 = s1.read_region("x", region)
            r2 = s2.read_region("x", region)
            assert np.array_equal(r1, r2)
            # Same bytes, but entry-scoped keys: two residencies, two decodes.
            assert cache.loads == 2

    def test_small_cache_still_correct_under_eviction(self, grid_path, field):
        # Budget of ~2 tiles: constant eviction churn, results still exact.
        with ArchiveStore(cache_bytes=2 * TILE ** 3 * 8) as store:
            store.add("g", grid_path)
            for region in REGIONS:
                got = store.read_region("g", region)
                assert np.array_equal(got, repro.read_region(grid_path, region))
            stats = store.stats()
            assert stats["evictions"] > 0  # the budget actually bit
            assert stats["tile_decodes"] > len(_distinct_tiles(grid_path,
                                                               REGIONS))


# ---------------------------------------------------------------------------
# The acceptance stress test
# ---------------------------------------------------------------------------

class TestConcurrencyStress:
    N_THREADS = 8
    ROUNDS = 3

    def test_hammering_threads_bit_identical_and_single_decode(self, grid_path):
        """N threads x mixed overlapping regions == cold reads, decode-counted.

        Every thread walks the region set several times from a different
        starting offset, so at any moment different threads want overlapping
        tile sets — the worst case for double-decode and torn-read bugs.
        With a cache comfortably larger than the working set, the proof
        obligation is exact: total tile decodes == distinct tiles touched.
        """
        cold = [repro.read_region(grid_path, r) for r in REGIONS]
        with ArchiveStore() as store:
            store.add("g", grid_path)
            errors = []

            def worker(k: int):
                try:
                    for round_ in range(self.ROUNDS):
                        order = list(range(len(REGIONS)))
                        offset = (k + round_) % len(REGIONS)
                        order = order[offset:] + order[:offset]
                        for j in order:
                            got = store.read_region("g", REGIONS[j])
                            if not np.array_equal(got, cold[j]):
                                errors.append(
                                    f"thread {k} region {j} diverged")
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(f"thread {k} raised {exc!r}")

            threads = [threading.Thread(target=worker, args=(k,))
                       for k in range(self.N_THREADS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive(), "stress worker deadlocked"
            assert not errors, errors

            distinct = _distinct_tiles(grid_path, REGIONS)
            stats = store.stats()
            # The decode-counter proof: 8 threads x 3 rounds x 7 regions hit
            # every tile many times, but each decoded at most once while
            # cache-resident (here: exactly once, nothing was evicted).
            assert stats["evictions"] == 0
            assert stats["tile_decodes"] == len(distinct)
            assert stats["region_reads"] == (self.N_THREADS * self.ROUNDS
                                             * len(REGIONS))

    def test_concurrent_batched_reads(self, grid_path):
        cold = [repro.read_region(grid_path, r) for r in REGIONS]
        with ArchiveStore() as store:
            store.add("g", grid_path)
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [pool.submit(store.read_regions, "g", list(REGIONS))
                           for _ in range(4)]
                for f in futures:
                    for want, got in zip(cold, f.result(timeout=120)):
                        assert np.array_equal(got, want)
            assert store.stats()["tile_decodes"] == len(
                _distinct_tiles(grid_path, REGIONS))

    def test_remove_while_reading_defers_handle_close(self, grid_path):
        """remove() during an in-flight read must not yank the fd away."""
        with ArchiveStore() as store:
            store.add("g", grid_path)
            entry = store._entry("g")
            entry.unpin()
            real_read = entry.handle.read_at
            started, release = threading.Event(), threading.Event()

            def slow_read(offset, length):
                started.set()
                assert release.wait(10)
                return real_read(offset, length)

            entry.handle.read_at = slow_read
            result = {}

            def reader():
                result["arr"] = store.read_region("g", REGIONS[0])

            t = threading.Thread(target=reader)
            t.start()
            assert started.wait(10)          # reader is inside the tile I/O
            store.remove("g")                # retire mid-read: close deferred
            release.set()
            t.join(timeout=30)
            assert not t.is_alive()
            assert np.array_equal(result["arr"],
                                  repro.read_region(grid_path, REGIONS[0]))
            # The last unpin really did close the descriptor...
            assert entry.handle._fd == -1
            # ...and the key is gone for new reads.
            with pytest.raises(KeyError, match="no archive registered"):
                store.read_region("g", REGIONS[0])

    def test_concurrent_adds_and_reads(self, grid_blob):
        """Registering archives while other threads read stays consistent."""
        with ArchiveStore() as store:
            store.add("k0", grid_blob)
            want = repro.read_region(grid_blob, REGIONS[0])

            def reader():
                for _ in range(10):
                    assert np.array_equal(
                        store.read_region("k0", REGIONS[0]), want)

            def adder(k):
                store.add(f"extra{k}", grid_blob)

            with ThreadPoolExecutor(max_workers=6) as pool:
                futures = ([pool.submit(reader) for _ in range(3)]
                           + [pool.submit(adder, k) for k in range(3)])
                for f in futures:
                    f.result(timeout=120)
            assert store.keys() == ("extra0", "extra1", "extra2", "k0")


# ---------------------------------------------------------------------------
# Threaded in-store tile decode (read_region(decode_workers=N))
# ---------------------------------------------------------------------------

class TestThreadedDecode:
    """``decode_workers > 1`` fans independent tile decodes over a bounded
    pool; everything observable — bytes, dtype, counters, failure scope —
    must match the serial path exactly."""

    def test_workers_bit_identical_and_single_decode(self, grid_path):
        cold = [repro.read_region(grid_path, r) for r in REGIONS]
        for workers in (2, 4, 7):
            with ArchiveStore() as store:
                store.add("g", grid_path)
                for j, region in enumerate(REGIONS):
                    got = store.read_region("g", region,
                                            decode_workers=workers)
                    assert got.dtype == cold[j].dtype
                    assert np.array_equal(got, cold[j]), (workers, region)
                stats = store.stats()
                # Single-flight holds under the pool: the 27-tile sweep
                # decodes each distinct tile exactly once per residency.
                assert stats["evictions"] == 0
                assert stats["tile_decodes"] == len(
                    _distinct_tiles(grid_path, REGIONS))
                assert stats["region_reads"] == len(REGIONS)

    def test_batched_and_out_paths_with_workers(self, grid_path):
        cold = [repro.read_region(grid_path, r) for r in REGIONS]
        with ArchiveStore() as store:
            store.add("g", grid_path)
            results = store.read_regions("g", list(REGIONS), decode_workers=4)
            for want, got in zip(cold, results):
                assert np.array_equal(got, want)
            assert store.stats()["tile_decodes"] == len(
                _distinct_tiles(grid_path, REGIONS))
            out = np.empty(cold[0].shape, dtype=cold[0].dtype)
            assert store.read_region("g", REGIONS[0], out=out,
                                     decode_workers=3) is out
            assert np.array_equal(out, cold[0])

    def test_invalid_worker_count_rejected(self, grid_path):
        with ArchiveStore() as store:
            store.add("g", grid_path)
            with pytest.raises(ValueError, match="decode_workers"):
                store.read_region("g", REGIONS[0], decode_workers=0)
            with pytest.raises(ValueError, match="decode_workers"):
                store.read_regions("g", [REGIONS[1]], decode_workers=-1)

    def test_hammering_threads_each_with_worker_pools(self, grid_path):
        """N caller threads x per-call decode pools: nested parallelism is
        the worst case for the single-flight cache — decode counts must
        still collapse to one per distinct tile."""
        cold = [repro.read_region(grid_path, r) for r in REGIONS]
        with ArchiveStore() as store:
            store.add("g", grid_path)
            errors = []

            def worker(k: int):
                try:
                    for round_ in range(2):
                        for j, region in enumerate(REGIONS):
                            workers = 1 + (k + j + round_) % 4
                            got = store.read_region(
                                "g", region, decode_workers=workers)
                            if not np.array_equal(got, cold[j]):
                                errors.append(
                                    f"thread {k} region {j} diverged")
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(f"thread {k} raised {exc!r}")

            threads = [threading.Thread(target=worker, args=(k,))
                       for k in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive(), "threaded-decode worker deadlocked"
            assert not errors, errors
            stats = store.stats()
            assert stats["evictions"] == 0
            assert stats["tile_decodes"] == len(
                _distinct_tiles(grid_path, REGIONS))
            assert stats["region_reads"] == 6 * 2 * len(REGIONS)

    def _corrupt_tile(self, path: str, tile: int):
        """Flip one byte inside tile ``tile``'s blob; return its slices."""
        index = repro.read_header(path)
        offset = (index.data_start + index.offsets[tile]
                  + index.lengths[tile] // 2)
        with open(path, "r+b") as f:
            f.seek(offset)
            byte = f.read(1)
            f.seek(offset)
            f.write(bytes([byte[0] ^ 0xFF]))
        return index.tile_slices(tile)

    def test_corrupt_tile_failure_scoped_under_workers(self, grid_path):
        victim = 13  # the interior (1,1,1) tile
        self._corrupt_tile(grid_path, victim)
        whole = (slice(0, SIDE), slice(0, SIDE), slice(0, SIDE))
        good = (slice(0, 8), slice(0, 8), slice(0, 8))
        with ArchiveStore() as store:
            store.add("g", grid_path)
            # A pooled multi-tile read crossing the victim raises the same
            # scoped error as the serial path...
            with pytest.raises(ValueError, match="checksum mismatch"):
                store.read_region("g", whole, decode_workers=4)
            # ...the failure is not cached (it fails again, identically)...
            with pytest.raises(ValueError, match="checksum mismatch"):
                store.read_region("g", whole, decode_workers=4)
            # ...and regions avoiding the victim keep serving bit-identical
            # results, including the healthy siblings decoded by the failed
            # pooled read (now cache-resident).
            assert np.array_equal(
                store.read_region("g", good, decode_workers=4),
                repro.read_region(grid_path, good))
            for region in REGIONS[:1] + REGIONS[3:]:
                if victim in _distinct_tiles(grid_path, [region]):
                    continue
                assert np.array_equal(
                    store.read_region("g", region, decode_workers=3),
                    repro.read_region(grid_path, region)), region

    def test_earliest_failing_tile_raised_deterministically(self, grid_path):
        """With several corrupt tiles in one pooled read, the error raised is
        the lowest-numbered failing tile's — same as serial iteration."""
        slices_a = self._corrupt_tile(grid_path, 4)
        self._corrupt_tile(grid_path, 22)
        whole = (slice(0, SIDE), slice(0, SIDE), slice(0, SIDE))
        serial_msg = pooled_msg = None
        with ArchiveStore() as store:
            store.add("g", grid_path)
            try:
                store.read_region("g", whole)
            except ValueError as exc:
                serial_msg = str(exc)
        with ArchiveStore() as store:
            store.add("g", grid_path)
            for _ in range(3):  # pool scheduling must not reorder the raise
                try:
                    store.read_region("g", whole, decode_workers=4)
                except ValueError as exc:
                    pooled_msg = str(exc)
                assert pooled_msg == serial_msg
            # Tile 4's region is the one that fails on a direct read too.
            with pytest.raises(ValueError, match="checksum mismatch"):
                store.read_region("g", tuple(
                    slice(s.start + 1, s.stop - 1) for s in slices_a),
                    decode_workers=2)

"""The `repro serve` HTTP endpoint: e2e correctness, errors, corruption scope.

Acceptance (ISSUE 5): an end-to-end test starts ``repro serve`` (the real CLI
subprocess), fetches a region over HTTP and matches ``repro.read_region``
bit-for-bit.  Corruption tests pin the failure scope: a bad tile CRC turns
into an error response on the affected region only, while other regions of
the same archive keep serving.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import api
from repro.store import ArchiveStore, make_server

SRC = Path(__file__).resolve().parents[1] / "src"
CODEC = "szinterp"
BOUND = 1e-3
SIDE, TILE = 48, 16


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(11)
    return rng.standard_normal((SIDE, SIDE, SIDE)).cumsum(axis=0)


@pytest.fixture(scope="module")
def grid_blob(field):
    return api.compress_chunked(field, codec=CODEC, bound=BOUND,
                                chunk_shape=(TILE, TILE, TILE))


@pytest.fixture()
def grid_path(grid_blob, tmp_path):
    path = tmp_path / "grid.rpra"
    path.write_bytes(grid_blob)
    return str(path)


@pytest.fixture(params=["threaded", "selectors"])
def server(grid_path, request):
    """An in-process server on an OS-assigned free port, both front ends.

    Every test in this module runs against the threaded fallback AND the
    selectors event loop: the endpoint contract must not depend on the
    transport.
    """
    store = ArchiveStore()
    store.add("field", grid_path)
    srv = make_server(store, server=request.param)  # port=0: never collides
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        store.close()
        thread.join(timeout=10)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, dict(resp.headers), resp.read()


def _get_error(url: str):
    try:
        urllib.request.urlopen(url, timeout=30)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError(f"{url} unexpectedly succeeded")


def _fetch_region(base: str, key: str, spec: str) -> np.ndarray:
    status, headers, body = _get(f"{base}/v1/{key}/region?r={spec}")
    assert status == 200
    shape = tuple(int(s) for s in headers["X-Repro-Shape"].split(","))
    meta = json.loads(headers["X-Repro-Header"])
    assert meta["shape"] == list(shape) and meta["order"] == "C"
    arr = np.frombuffer(body, dtype=np.dtype(headers["X-Repro-Dtype"]))
    return arr.reshape(shape)


# ---------------------------------------------------------------------------
# In-process endpoint behaviour
# ---------------------------------------------------------------------------

class TestEndpoints:
    def test_healthz(self, server):
        status, _, body = _get(server.url + "/healthz")
        payload = json.loads(body)
        assert status == 200 and payload["status"] == "ok"
        assert payload["archives"] == ["field"]
        assert "hits" in payload["stats"] and "tile_decodes" in payload["stats"]

    def test_info(self, server):
        status, _, body = _get(server.url + "/v1/field/info")
        info = json.loads(body)
        assert status == 200
        assert info["codec"] == CODEC and info["version"] == 3
        assert info["shape"] == [SIDE, SIDE, SIDE]
        assert info["chunk_shape"] == [TILE, TILE, TILE]
        assert info["n_tiles"] == 27

    def test_region_bit_identical_to_read_region(self, server, grid_path):
        for spec in ["10:20,0:64,5:9", "0:48,16:17,:", "30", "2:14,2:14,2:14"]:
            got = _fetch_region(server.url, "field", spec)
            want = repro.read_region(grid_path, spec)
            assert got.dtype == want.dtype and got.shape == want.shape
            assert np.array_equal(got, want), spec

    def test_empty_region_zero_bytes(self, server):
        status, headers, body = _get(server.url + "/v1/field/region?r=5:5,:,:")
        assert status == 200 and body == b""
        assert headers["X-Repro-Shape"] == f"0,{SIDE},{SIDE}"

    def test_unknown_key_404(self, server):
        code, payload = _get_error(server.url + "/v1/nope/info")
        assert code == 404 and "nope" in payload["error"]
        code, _ = _get_error(server.url + "/v1/nope/region?r=0:1")
        assert code == 404

    def test_unknown_route_404(self, server):
        assert _get_error(server.url + "/v2/field/region?r=0:1")[0] == 404
        assert _get_error(server.url + "/")[0] == 404

    def test_bad_region_400(self, server):
        for spec in ["bogus", "0:10:2,:,:", "-3:5,:,:", "1:2:3:4", "0:1,:,:,:"]:
            code, payload = _get_error(
                server.url + f"/v1/field/region?r={spec}")
            assert code == 400, spec
            assert payload["error"]

    def test_missing_region_param_400(self, server):
        code, payload = _get_error(server.url + "/v1/field/region")
        assert code == 400 and "r=" in payload["error"]

    def test_concurrent_http_reads_consistent(self, server, grid_path):
        specs = ["0:20,0:20,0:20", "10:30,10:30,10:30", "0:48,0:16,0:16"]
        want = {s: repro.read_region(grid_path, s) for s in specs}
        errors = []

        def client(spec):
            try:
                for _ in range(5):
                    if not np.array_equal(_fetch_region(server.url, "field",
                                                        spec), want[spec]):
                        errors.append(f"diverged on {spec}")
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = [threading.Thread(target=client, args=(s,))
                   for s in specs * 2]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors


# ---------------------------------------------------------------------------
# Corruption scope: the affected region only
# ---------------------------------------------------------------------------

class TestCorruptionScope:
    def _corrupt_tile(self, path: str, tile: int) -> tuple:
        """Flip one byte inside tile ``tile``'s blob; return its field slices."""
        index = repro.read_header(path)
        offset = index.data_start + index.offsets[tile] + index.lengths[tile] // 2
        with open(path, "r+b") as f:
            f.seek(offset)
            byte = f.read(1)
            f.seek(offset)
            f.write(bytes([byte[0] ^ 0xFF]))
        return index.tile_slices(tile)

    def test_bad_tile_errors_only_its_regions(self, grid_path):
        store = ArchiveStore()
        store.add("field", grid_path)
        srv = make_server(store)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            # Corrupt an interior tile *after* the store opened (the header
            # is long parsed; the CRC check runs on every cold tile read).
            victim = 13
            vs = self._corrupt_tile(grid_path, victim)
            bad_spec = ",".join(f"{s.start + 1}:{s.stop - 1}" for s in vs)
            good_spec = "0:8,0:8,0:8"  # tile 0, far from the victim

            code, payload = _get_error(
                srv.url + f"/v1/field/region?r={bad_spec}")
            assert code == 500
            assert "checksum mismatch" in payload["error"]

            # ... while other regions of the same archive keep serving:
            got = _fetch_region(srv.url, "field", good_spec)
            assert np.array_equal(got, repro.read_region(grid_path, good_spec))

            # The failure was not cached: the bad region fails again (same
            # scoped error), and the server is still healthy.
            assert _get_error(
                srv.url + f"/v1/field/region?r={bad_spec}")[0] == 500
            status, _, body = _get(srv.url + "/healthz")
            assert status == 200 and json.loads(body)["status"] == "ok"

            # A full-field request crosses the bad tile: also a scoped 500.
            assert _get_error(srv.url + "/v1/field/region?r=:,:,:")[0] == 500
        finally:
            srv.shutdown()
            srv.server_close()
            store.close()
            thread.join(timeout=10)

    def test_cached_tile_survives_later_disk_corruption(self, grid_path):
        """A tile decoded before the byte flip keeps serving from cache."""
        with ArchiveStore() as store:
            store.add("field", grid_path)
            spec = "2:14,2:14,2:14"  # inside tile 0
            before = store.read_region("field", spec)
            self._corrupt_tile(grid_path, 0)
            after = store.read_region("field", spec)   # cache hit, no I/O
            assert np.array_equal(before, after)
            with pytest.raises(ValueError, match="checksum mismatch"):
                # An uncached region of the bad tile's *file bytes* fails
                # once eviction or a fresh store forces a re-read.
                fresh = ArchiveStore()
                try:
                    fresh.add("f", grid_path)
                    fresh.read_region("f", spec)
                finally:
                    fresh.close()


# ---------------------------------------------------------------------------
# The CLI subprocess end-to-end acceptance test
# ---------------------------------------------------------------------------

class TestCliServe:
    def test_serve_subprocess_bit_identical(self, grid_path):
        """`python -m repro serve` + HTTP fetch == repro.read_region, bitwise."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", f"field={grid_path}",
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        try:
            base = None
            for _ in range(50):
                line = proc.stdout.readline()
                assert line, (f"serve exited early: "
                              f"{proc.stderr.read() if proc.poll() is not None else ''}")
                m = re.search(r"serving 1 archive\(s\) on (http://[\w.:]+)",
                              line)
                if m:
                    base = m.group(1)
                    break
            assert base, "serve never printed its URL"

            spec = "10:20,0:64,5:9"
            got = _fetch_region(base, "field", spec)
            want = repro.read_region(grid_path, spec)
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)

            info = json.loads(_get(base + "/v1/field/info")[2])
            assert info["codec"] == CODEC and info["n_tiles"] == 27
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    def test_serve_rejects_missing_archive(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             str(tmp_path / "absent.rpra"), "--port", "0"],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode != 0
        assert "absent.rpra" in proc.stderr

    def test_serve_parser_bare_path_key_is_stem(self, grid_path):
        """A bare PATH argument serves under the file-stem key."""
        from repro.cli import build_parser
        args = build_parser().parse_args(["serve", grid_path, "--port", "0"])
        assert args.archives == [grid_path]
        assert args.cache_mb == 256.0

    def test_serve_bare_filename_with_equals_not_split(self, grid_blob,
                                                       tmp_path):
        """An existing file named like KEY=PATH is served as a bare path."""
        path = tmp_path / "run=3.rpra"
        path.write_bytes(grid_blob)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(path), "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        try:
            base = None
            for _ in range(50):
                line = proc.stdout.readline()
                assert line, "serve exited early"
                m = re.search(r"on (http://[\w.:]+)", line)
                if m:
                    base = m.group(1)
                    break
            # The key is the file stem ("run=3"), not the '='-split halves.
            info = json.loads(_get(base + "/v1/run%3D3/info")[2])
            assert info["shape"] == [SIDE, SIDE, SIDE]
        finally:
            proc.terminate()
            proc.wait(timeout=30)


# ---------------------------------------------------------------------------
# Conditional GET, batched regions, latency histograms (both front ends)
# ---------------------------------------------------------------------------

def _open_conn(server):
    import http.client

    host, port = server.server_address[:2]
    return http.client.HTTPConnection(host, port, timeout=30)


class TestConditionalGet:
    def test_info_304_on_matching_etag(self, server):
        conn = _open_conn(server)
        try:
            conn.request("GET", "/v1/field/info")
            resp = conn.getresponse()
            etag = resp.getheader("ETag")
            generation = resp.getheader("X-Repro-Generation")
            resp.read()
            assert resp.status == 200 and etag and generation == "1"
            conn.request("GET", "/v1/field/info",
                         headers={"If-None-Match": etag})
            resp = conn.getresponse()
            body = resp.read()
            assert resp.status == 304 and body == b""
            assert resp.getheader("ETag") == etag
            assert resp.getheader("X-Repro-Generation") == "1"
        finally:
            conn.close()

    def test_region_304_skips_body(self, server):
        conn = _open_conn(server)
        try:
            conn.request("GET", "/v1/field/region?r=0:4,0:4,0:4")
            resp = conn.getresponse()
            etag = resp.getheader("ETag")
            body = resp.read()
            assert resp.status == 200 and len(body) > 0 and etag
            for inm in (etag, f'W/{etag}', f'"zzz", {etag}', "*"):
                conn.request("GET", "/v1/field/region?r=0:4,0:4,0:4",
                             headers={"If-None-Match": inm})
                resp = conn.getresponse()
                assert resp.status == 304 and resp.read() == b"", inm
        finally:
            conn.close()

    def test_stale_etag_gets_fresh_body(self, server):
        conn = _open_conn(server)
        try:
            conn.request("GET", "/v1/field/region?r=0:4,0:4,0:4",
                         headers={"If-None-Match": '"deadbeef"'})
            resp = conn.getresponse()
            body = resp.read()
            assert resp.status == 200 and len(body) == 4 * 4 * 4 * 8
        finally:
            conn.close()

    def test_conditional_get_unknown_key_404(self, server):
        conn = _open_conn(server)
        try:
            conn.request("GET", "/v1/nope/region?r=0:1",
                         headers={"If-None-Match": '"x"'})
            resp = conn.getresponse()
            resp.read()
            assert resp.status == 404
        finally:
            conn.close()


class TestBatchedRegions:
    SPECS = ["0:4,0:4,0:4", "10:20,0:8,4:9", "30"]

    def _post(self, server, payload: bytes):
        conn = _open_conn(server)
        try:
            conn.request("POST", "/v1/field/regions", body=payload,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            return resp.status, dict(resp.getheaders()), resp.read()
        finally:
            conn.close()

    def test_batch_matches_single_region_reads(self, server, grid_path):
        payload = json.dumps({"regions": self.SPECS}).encode()
        status, headers, body = self._post(server, payload)
        assert status == 200
        meta = json.loads(headers["X-Repro-Header"])
        assert meta["count"] == len(self.SPECS) == int(headers["X-Repro-Count"])
        assert meta["generation"] == 1 and headers.get("ETag")
        for spec, part in zip(self.SPECS, meta["regions"]):
            got = np.frombuffer(
                body[part["offset"]:part["offset"] + part["nbytes"]],
                dtype=np.dtype(part["dtype"])).reshape(part["shape"])
            assert np.array_equal(got, repro.read_region(grid_path, spec)), spec
        assert len(body) == sum(p["nbytes"] for p in meta["regions"])

    def test_bare_list_body_accepted(self, server):
        status, headers, body = self._post(
            server, json.dumps(["0:2,0:2,0:2"]).encode())
        assert status == 200 and len(body) == 2 * 2 * 2 * 8

    def test_bad_batches_400(self, server):
        for payload in (b"not json", b"{}", b"[]", b'{"regions": [1, 2]}',
                        b'{"regions": "0:1"}'):
            status, _, body = self._post(server, payload)
            assert status == 400, payload
            assert "error" in json.loads(body)

    def test_bad_region_spec_400_unknown_key_404(self, server):
        status, _, _ = self._post(
            server, json.dumps({"regions": ["bogus"]}).encode())
        assert status == 400
        conn = _open_conn(server)
        try:
            conn.request("POST", "/v1/nope/regions",
                         body=json.dumps(["0:1"]).encode())
            resp = conn.getresponse()
            resp.read()
            assert resp.status == 404
        finally:
            conn.close()

    def test_oversized_batch_rejected(self, server):
        many = json.dumps({"regions": ["0:1,0:1,0:1"] * 2000}).encode()
        status, _, _ = self._post(server, many)
        assert status == 400


class TestLatencyHistograms:
    def test_metrics_report_quantiles(self, server):
        for _ in range(3):
            _get(server.url + "/v1/field/region?r=0:4,0:4,0:4")
        _get_error(server.url + "/v1/field/region?r=bogus")
        doc = json.loads(_get(server.url + "/metrics")[2])
        region = doc["routes"]["region"]
        assert region["requests"] == 4 and region["errors"] == 1
        assert sum(region["buckets"]) == 4
        assert region["p50_ms"] > 0 and region["p99_ms"] >= region["p50_ms"]

"""Bit-exactness regression: sz21/szinterp/Huffman vectorized hot paths.

The per-element ``np.ndindex`` loops were replaced by batched hyperplane
passes on both directions (`_lorenzo_decode_blocks` / `_lorenzo_encode_blocks`),
szinterp's per-point reference encoder mirrors its vectorized passes, and the
Huffman encoder's bit-plane loop became one ``repeat``-based extraction.  The
scalar paths are kept as the reference formulations; these tests pin every
vectorized path to its reference **bit for bit** (uint64 view comparison or
byte equality, not allclose) at the kernel level, the payload level and the
archive level, across dimensionalities, ragged block edges, constant and
extreme-range fields, and all three bound modes.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.bounds import Abs, PtwRel, Rel
from repro.compressors.sz21 import (
    SZ21Compressor,
    _lorenzo_decode_blocks,
    _lorenzo_encode_blocks,
    _lorenzo_predict_blocks,
    _sequential_lorenzo_decode,
    _sequential_lorenzo_encode,
)
from repro.compressors.szinterp import SZInterpCompressor
from repro.encoding.huffman import HuffmanCodec, _pack_codes, _pack_codes_scalar
from repro.predictors.interpolation import (
    multilevel_interpolation_encode,
    multilevel_interpolation_encode_scalar,
)
from repro.predictors.lorenzo import lorenzo_predict
from repro.quantization.linear import UNPREDICTABLE_CODE


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return np.array_equal(np.asarray(a).view(np.uint64), np.asarray(b).view(np.uint64))


@pytest.mark.parametrize("shape,num_bins", [
    ((16,), 65536), ((16,), 8),          # 1-d, none/many unpredictables
    ((16, 16), 65536), ((16, 16), 8),    # 2-d
    ((8, 8, 8), 65536), ((8, 8, 8), 8),  # 3-d
    ((5,), 16), ((3, 7), 16), ((2, 3, 5), 16), ((1, 1), 16), ((1, 1, 1), 65536),
])
def test_block_decode_bit_exact(shape, num_bins):
    rng = np.random.default_rng(sum(shape) * num_bins % 997)
    error_bound = 0.01
    blocks = [rng.standard_normal(shape).cumsum(axis=0) * scale
              for scale in (1.0, 3.0, 0.25, 10.0)]
    encoded = [_sequential_lorenzo_encode(b, error_bound, num_bins) for b in blocks]
    codes = np.stack([e[0] for e in encoded])
    is_unp = codes == UNPREDICTABLE_CODE
    uvals = np.zeros(codes.shape, dtype=np.float64)
    if is_unp.any():
        uvals[is_unp] = np.concatenate([np.asarray(e[1], dtype=np.float64)
                                        for e in encoded])
    vectorized = _lorenzo_decode_blocks(codes, uvals, is_unp, error_bound, num_bins)
    reference = np.stack([
        _sequential_lorenzo_decode(e[0], np.asarray(e[1]), error_bound, num_bins)
        for e in encoded])
    assert _bitwise_equal(vectorized, reference)


@pytest.mark.parametrize("shape", [(200,), (96, 128), (33, 17), (24, 24, 24),
                                   (7, 11, 13)])
def test_payload_decode_bit_exact(shape):
    """Full pipeline: vectorized decompress == scalar decompress, bit for bit,
    on payloads mixing Lorenzo and regression blocks."""
    rng = np.random.default_rng(len(shape))
    data = rng.standard_normal(shape).cumsum(axis=0)
    comp = SZ21Compressor()
    payload = comp.compress(data, 1e-3)
    fast = comp.decompress(payload)
    slow = comp.decompress(payload, scalar=True)
    assert _bitwise_equal(fast, slow)
    vrange = float(data.max() - data.min())
    assert float(np.max(np.abs(data - fast))) <= 1e-3 * vrange


def test_payload_decode_bit_exact_many_unpredictables():
    """Tiny bin count forces the unpredictable path everywhere."""
    rng = np.random.default_rng(99)
    data = rng.standard_normal((40, 40)).cumsum(axis=0)
    comp = SZ21Compressor(num_bins=4)
    payload = comp.compress(data, 1e-4)
    assert _bitwise_equal(comp.decompress(payload), comp.decompress(payload, scalar=True))


def test_stream_size_mismatch_raises():
    comp = SZ21Compressor()
    data = np.random.default_rng(0).standard_normal((32, 32)).cumsum(axis=0)
    payload = comp.compress(data, 1e-3)
    from repro.encoding.container import ByteContainer

    container = ByteContainer.from_bytes(payload)
    # Drop one flag symbol: flags/codes no longer match the grid.
    flags = comp._entropy.decode(container["flags"])
    container["flags"] = comp._entropy.encode(flags[:-1])
    with pytest.raises(ValueError, match="corrupt"):
        comp.decompress(container.to_bytes())


def test_unknown_predictor_flag_raises():
    """A flag outside {lorenzo, regression} must raise, not silently decode
    the block as zeros."""
    comp = SZ21Compressor()
    data = np.random.default_rng(1).standard_normal((32, 32)).cumsum(axis=0)
    payload = comp.compress(data, 1e-3)
    from repro.encoding.container import ByteContainer

    container = ByteContainer.from_bytes(payload)
    flags = comp._entropy.decode(container["flags"])
    flags[0] = 7
    container["flags"] = comp._entropy.encode(flags)
    with pytest.raises(ValueError, match="unknown block predictor flag"):
        comp.decompress(container.to_bytes())


def test_truncated_coefficient_stream_raises():
    comp = SZ21Compressor()
    rng = np.random.default_rng(2)
    # locally-linear field: the regression predictor wins on most blocks
    data = (np.add.outer(np.linspace(0, 10, 64), np.linspace(0, 5, 64))
            + 0.01 * rng.standard_normal((64, 64)))
    payload = comp.compress(data, 1e-3)
    from repro.encoding.container import ByteContainer

    container = ByteContainer.from_bytes(payload)
    assert "coefs" in container, "field must select some regression blocks"
    coefs = np.frombuffer(comp._backend.decompress(container["coefs"]), dtype=np.float64)
    container["coefs"] = comp._backend.compress(coefs[:-1].tobytes())
    with pytest.raises(ValueError, match="corrupt payload: regression coefficient"):
        comp.decompress(container.to_bytes())


# ---------------------------------------------------------------------------
# Encode side: vectorized sz21 encode vs the scalar reference
# ---------------------------------------------------------------------------

def _field(shape, kind: str, rng: np.random.Generator) -> np.ndarray:
    """Test fields spanning the encoder's regimes."""
    if kind == "smooth":  # Lorenzo-friendly: cumsum of white noise
        return rng.standard_normal(shape).cumsum(axis=0)
    if kind == "linear":  # regression-friendly: a noisy hyperplane
        out = np.zeros(shape)
        for axis, n in enumerate(shape):
            ramp = np.linspace(0.0, 3.0 * (axis + 1), n)
            out = out + ramp.reshape([-1 if a == axis else 1
                                      for a in range(len(shape))])
        return out + 0.01 * rng.standard_normal(shape)
    if kind == "noise":  # unpredictable-heavy
        return rng.standard_normal(shape) * 1e6
    if kind == "constant":
        return np.full(shape, -2.625)
    if kind == "extreme":  # magnitudes at the edge of the float64 range
        return rng.standard_normal(shape) * 1e154
    raise AssertionError(kind)


@pytest.mark.parametrize("shape,num_bins", [
    ((16,), 65536), ((16,), 8),
    ((16, 16), 65536), ((16, 16), 8),
    ((8, 8, 8), 65536), ((8, 8, 8), 8),
    ((5,), 16), ((3, 7), 16), ((2, 3, 5), 16), ((1, 1), 16), ((1, 1, 1), 65536),
])
def test_block_encode_bit_exact(shape, num_bins):
    """`_lorenzo_encode_blocks` == the sequential scan: codes, reconstruction
    and the unpredictable-literal stream, bit for bit."""
    rng = np.random.default_rng(sum(shape) * num_bins % 991)
    error_bound = 0.01
    blocks = np.stack([rng.standard_normal(shape).cumsum(axis=0) * scale
                       for scale in (1.0, 3.0, 0.25, 10.0)])
    codes_vec, recon_vec = _lorenzo_encode_blocks(blocks, error_bound, num_bins)
    ref = [_sequential_lorenzo_encode(b, error_bound, num_bins) for b in blocks]
    assert np.array_equal(codes_vec, np.stack([r[0] for r in ref]))
    assert _bitwise_equal(recon_vec, np.stack([r[2] for r in ref]))
    # Literal extraction in C order equals the scalar per-block append order.
    lit_vec = recon_vec[codes_vec == UNPREDICTABLE_CODE]
    lit_ref = np.asarray([v for r in ref for v in r[1]], dtype=np.float64)
    assert _bitwise_equal(lit_vec, lit_ref)


def test_batched_lorenzo_predict_bit_exact():
    rng = np.random.default_rng(17)
    for shape in [(16,), (16, 16), (8, 8, 8), (1, 1), (3, 5, 7)]:
        batch = rng.standard_normal((6,) + shape).cumsum(axis=0)
        ref = np.stack([lorenzo_predict(b) for b in batch])
        assert _bitwise_equal(_lorenzo_predict_blocks(batch), ref)


@pytest.mark.parametrize("shape", [
    (200,), (96, 128), (33, 17),   # ragged 2-d edges (block size 16)
    (24, 24, 24), (7, 11, 13),     # ragged 3-d edges (block size 8)
    (1,), (1, 1), (1, 1, 1),
])
@pytest.mark.parametrize("kind", ["smooth", "linear", "noise", "constant", "extreme"])
def test_payload_encode_byte_identical(shape, kind):
    """`compress()` == `compress(scalar=True)` byte for byte: the scalar path
    is the pre-vectorization encoder verbatim, so this also pins the archive
    format against drift."""
    rng = np.random.default_rng(abs(hash((shape, kind))) % (2**32))
    data = _field(shape, kind, rng)
    comp = SZ21Compressor()
    fast = comp.compress(data, 1e-3)
    slow = comp.compress(data, 1e-3, scalar=True)
    assert fast == slow
    recon = comp.decompress(fast)
    vrange = float(data.max() - data.min())
    bound = 1e-3 * (vrange if vrange > 0 else 1.0)
    assert float(np.max(np.abs(data - recon))) <= bound


def test_payload_encode_byte_identical_many_unpredictables():
    rng = np.random.default_rng(7)
    data = rng.standard_normal((40, 40)).cumsum(axis=0)
    comp = SZ21Compressor(num_bins=4)
    assert comp.compress(data, 1e-4) == comp.compress(data, 1e-4, scalar=True)


def test_constructor_scalar_flag_not_archived():
    """``scalar=True`` selects the encode path but never changes archive
    bytes or metadata — it must not leak into ``archive_options``."""
    rng = np.random.default_rng(8)
    data = rng.standard_normal((20, 20)).cumsum(axis=0)
    for cls in (SZ21Compressor, SZInterpCompressor):
        fast, slow = cls(), cls(scalar=True)
        assert slow.compress(data, 1e-3) == fast.compress(data, 1e-3)
        assert "scalar" not in fast.archive_options()
        assert "scalar" not in slow.archive_options()
        assert slow.archive_options() == fast.archive_options()


@pytest.mark.parametrize("codec", ["sz21", "szinterp"])
@pytest.mark.parametrize("mode", ["rel", "abs", "ptw_rel"])
def test_archive_byte_identical_all_bound_modes(codec, mode):
    """Facade-level archives: vectorized == scalar bytes under every bound
    mode (``codec_options={'scalar': True}`` reaches the constructor flag)."""
    rng = np.random.default_rng(13)
    data = rng.standard_normal((12, 16)).cumsum(axis=0)
    if mode == "ptw_rel":
        data = np.abs(data) + 0.25
    bound = {"rel": Rel(1e-3), "abs": Abs(1e-2), "ptw_rel": PtwRel(1e-3)}[mode]
    fast = repro.compress(data, codec, bound)
    slow = repro.compress(data, codec, bound, codec_options={"scalar": True})
    assert fast == slow
    assert _bitwise_equal(repro.decompress(fast), repro.decompress(slow))


# ---------------------------------------------------------------------------
# Encode side: vectorized szinterp encode vs the per-point reference
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("shape", [
    (1,), (7,), (65,), (130,),            # 1-d across anchor-stride regimes
    (1, 1), (12, 16), (33, 17),           # 2-d, ragged
    (1, 1, 1), (6, 7, 8), (16, 16, 16),   # 3-d
])
@pytest.mark.parametrize("kind", ["smooth", "noise", "constant"])
def test_szinterp_encoding_bit_exact(shape, kind):
    """Vectorized multilevel encode == the per-point scalar reference on
    every stream: anchors, codes, literals and reconstruction."""
    rng = np.random.default_rng(abs(hash((shape, kind, "szi"))) % (2**32))
    data = _field(shape, kind, rng)
    eb = 1e-3 * max(float(data.max() - data.min()), 1.0)
    fast = multilevel_interpolation_encode(data, eb)
    slow = multilevel_interpolation_encode_scalar(data, eb)
    assert np.array_equal(fast.anchor_codes, slow.anchor_codes)
    assert np.array_equal(fast.codes, slow.codes)
    assert _bitwise_equal(fast.unpredictable, slow.unpredictable)
    assert _bitwise_equal(fast.reconstructed, slow.reconstructed)


@pytest.mark.parametrize("shape", [(130,), (33, 17), (9, 10, 11)])
def test_szinterp_payload_byte_identical(shape):
    rng = np.random.default_rng(len(shape) + 40)
    data = rng.standard_normal(shape).cumsum(axis=0)
    comp = SZInterpCompressor()
    fast = comp.compress(data, 1e-3)
    assert fast == comp.compress(data, 1e-3, scalar=True)
    recon = comp.decompress(fast)
    vrange = float(data.max() - data.min())
    assert float(np.max(np.abs(data - recon))) <= 1e-3 * vrange


def test_szinterp_many_unpredictables_byte_identical():
    rng = np.random.default_rng(41)
    data = rng.standard_normal((30, 30)) * 1e5
    comp = SZInterpCompressor(num_bins=4)
    assert comp.compress(data, 1e-6) == comp.compress(data, 1e-6, scalar=True)


# ---------------------------------------------------------------------------
# Encode side: vectorized Huffman bit packing vs the bit-serial reference
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(4))
def test_huffman_encode_stream_bytes_identical(seed):
    codec = HuffmanCodec()
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 50_000))
    alphabet = int(rng.integers(2, 3000))
    symbols = (rng.zipf(1.5, size=n) % alphabet).astype(np.int64)
    fast = codec.encode(symbols)
    assert fast == codec.encode(symbols, scalar=True)
    assert np.array_equal(codec.decode(fast), symbols)


@pytest.mark.parametrize("symbols", [
    np.zeros(0, dtype=np.int64),                      # empty stream
    np.full(1000, 7, dtype=np.int64),                 # degenerate: one symbol
    np.array([0, 1], dtype=np.int64),                 # minimal alphabet
    np.array([0, 2**40, 2**62, 0, 2**40] * 3, dtype=np.int64),  # wide symbols
])
def test_huffman_encode_edge_streams_identical(symbols):
    codec = HuffmanCodec()
    fast = codec.encode(symbols)
    assert fast == codec.encode(symbols, scalar=True)
    assert np.array_equal(codec.decode(fast), symbols)


def test_huffman_pack_codes_matches_scalar_packer():
    """The packer kernels agree on raw (codes, lengths) streams, including
    chunk-boundary crossings at many lengths."""
    rng = np.random.default_rng(123)
    for _ in range(8):
        n = int(rng.integers(1, 5000))
        lens = rng.integers(1, 57, size=n).astype(np.int64)
        codes = np.array([int(rng.integers(0, 1 << int(l))) for l in lens],
                         dtype=np.uint64)
        assert _pack_codes(codes, lens) == _pack_codes_scalar(codes, lens)

"""Bit-exactness regression: sz21's hyperplane-vectorized Lorenzo decode.

The per-element ``np.ndindex`` decode loop was replaced by a batched
hyperplane pass (`_lorenzo_decode_blocks`).  The scalar path is kept as the
reference formulation; these tests pin the vectorized path to it **bit for
bit** (uint64 view comparison, not allclose) at both the block level and the
full-payload level, across dimensionalities, odd shapes and unpredictable
densities.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.sz21 import (
    SZ21Compressor,
    _lorenzo_decode_blocks,
    _sequential_lorenzo_decode,
    _sequential_lorenzo_encode,
)
from repro.quantization.linear import UNPREDICTABLE_CODE


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return np.array_equal(np.asarray(a).view(np.uint64), np.asarray(b).view(np.uint64))


@pytest.mark.parametrize("shape,num_bins", [
    ((16,), 65536), ((16,), 8),          # 1-d, none/many unpredictables
    ((16, 16), 65536), ((16, 16), 8),    # 2-d
    ((8, 8, 8), 65536), ((8, 8, 8), 8),  # 3-d
    ((5,), 16), ((3, 7), 16), ((2, 3, 5), 16), ((1, 1), 16), ((1, 1, 1), 65536),
])
def test_block_decode_bit_exact(shape, num_bins):
    rng = np.random.default_rng(sum(shape) * num_bins % 997)
    error_bound = 0.01
    blocks = [rng.standard_normal(shape).cumsum(axis=0) * scale
              for scale in (1.0, 3.0, 0.25, 10.0)]
    encoded = [_sequential_lorenzo_encode(b, error_bound, num_bins) for b in blocks]
    codes = np.stack([e[0] for e in encoded])
    is_unp = codes == UNPREDICTABLE_CODE
    uvals = np.zeros(codes.shape, dtype=np.float64)
    if is_unp.any():
        uvals[is_unp] = np.concatenate([np.asarray(e[1], dtype=np.float64)
                                        for e in encoded])
    vectorized = _lorenzo_decode_blocks(codes, uvals, is_unp, error_bound, num_bins)
    reference = np.stack([
        _sequential_lorenzo_decode(e[0], np.asarray(e[1]), error_bound, num_bins)
        for e in encoded])
    assert _bitwise_equal(vectorized, reference)


@pytest.mark.parametrize("shape", [(200,), (96, 128), (33, 17), (24, 24, 24),
                                   (7, 11, 13)])
def test_payload_decode_bit_exact(shape):
    """Full pipeline: vectorized decompress == scalar decompress, bit for bit,
    on payloads mixing Lorenzo and regression blocks."""
    rng = np.random.default_rng(len(shape))
    data = rng.standard_normal(shape).cumsum(axis=0)
    comp = SZ21Compressor()
    payload = comp.compress(data, 1e-3)
    fast = comp.decompress(payload)
    slow = comp.decompress(payload, scalar=True)
    assert _bitwise_equal(fast, slow)
    vrange = float(data.max() - data.min())
    assert float(np.max(np.abs(data - fast))) <= 1e-3 * vrange


def test_payload_decode_bit_exact_many_unpredictables():
    """Tiny bin count forces the unpredictable path everywhere."""
    rng = np.random.default_rng(99)
    data = rng.standard_normal((40, 40)).cumsum(axis=0)
    comp = SZ21Compressor(num_bins=4)
    payload = comp.compress(data, 1e-4)
    assert _bitwise_equal(comp.decompress(payload), comp.decompress(payload, scalar=True))


def test_stream_size_mismatch_raises():
    comp = SZ21Compressor()
    data = np.random.default_rng(0).standard_normal((32, 32)).cumsum(axis=0)
    payload = comp.compress(data, 1e-3)
    from repro.encoding.container import ByteContainer

    container = ByteContainer.from_bytes(payload)
    # Drop one flag symbol: flags/codes no longer match the grid.
    flags = comp._entropy.decode(container["flags"])
    container["flags"] = comp._entropy.encode(flags[:-1])
    with pytest.raises(ValueError, match="corrupt"):
        comp.decompress(container.to_bytes())


def test_unknown_predictor_flag_raises():
    """A flag outside {lorenzo, regression} must raise, not silently decode
    the block as zeros."""
    comp = SZ21Compressor()
    data = np.random.default_rng(1).standard_normal((32, 32)).cumsum(axis=0)
    payload = comp.compress(data, 1e-3)
    from repro.encoding.container import ByteContainer

    container = ByteContainer.from_bytes(payload)
    flags = comp._entropy.decode(container["flags"])
    flags[0] = 7
    container["flags"] = comp._entropy.encode(flags)
    with pytest.raises(ValueError, match="unknown block predictor flag"):
        comp.decompress(container.to_bytes())


def test_truncated_coefficient_stream_raises():
    comp = SZ21Compressor()
    rng = np.random.default_rng(2)
    # locally-linear field: the regression predictor wins on most blocks
    data = (np.add.outer(np.linspace(0, 10, 64), np.linspace(0, 5, 64))
            + 0.01 * rng.standard_normal((64, 64)))
    payload = comp.compress(data, 1e-3)
    from repro.encoding.container import ByteContainer

    container = ByteContainer.from_bytes(payload)
    assert "coefs" in container, "field must select some regression blocks"
    coefs = np.frombuffer(comp._backend.decompress(container["coefs"]), dtype=np.float64)
    container["coefs"] = comp._backend.compress(coefs[:-1].tobytes())
    with pytest.raises(ValueError, match="corrupt payload: regression coefficient"):
        comp.decompress(container.to_bytes())

"""Tests for repro.utils (rng, timing, validation, parallel)."""

import time

import numpy as np
import pytest

from repro.utils import (
    Timer,
    as_rng,
    ensure_array,
    ensure_float_array,
    ensure_positive,
    parallel_map,
    spawn_rngs,
    throughput_mb_s,
    value_range,
)
from repro.utils.rng import derive_seed
from repro.utils.validation import absolute_error_bound, ensure_dims


class TestRng:
    def test_as_rng_from_int_is_deterministic(self):
        assert as_rng(42).integers(0, 100, 5).tolist() == as_rng(42).integers(0, 100, 5).tolist()

    def test_as_rng_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_as_rng_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_as_rng_seedsequence(self):
        ss = np.random.SeedSequence(5)
        assert isinstance(as_rng(ss), np.random.Generator)

    def test_spawn_rngs_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_spawn_rngs_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(0, 1000, 10).tolist() != b.integers(0, 1000, 10).tolist()

    def test_spawn_rngs_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_rngs_from_generator(self):
        gens = spawn_rngs(np.random.default_rng(3), 3)
        assert len(gens) == 3

    def test_derive_seed_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_derive_seed_label_sensitive(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")


class TestTimer:
    def test_context_manager_measures_time(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005

    def test_start_stop(self):
        t = Timer()
        t.start()
        elapsed = t.stop()
        assert elapsed >= 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_throughput(self):
        assert throughput_mb_s(2_000_000, 2.0) == pytest.approx(1.0)

    def test_throughput_zero_time_is_inf(self):
        assert throughput_mb_s(100, 0.0) == float("inf")


class TestValidation:
    def test_ensure_array_rejects_empty(self):
        with pytest.raises(ValueError):
            ensure_array([])

    def test_ensure_float_array_casts_ints(self):
        out = ensure_float_array([1, 2, 3])
        assert np.issubdtype(out.dtype, np.floating)

    def test_ensure_float_array_rejects_nan(self):
        with pytest.raises(ValueError):
            ensure_float_array([1.0, np.nan])

    def test_ensure_float_array_rejects_inf(self):
        with pytest.raises(ValueError):
            ensure_float_array([1.0, np.inf])

    def test_ensure_float_array_contiguous(self):
        arr = np.arange(12.0).reshape(3, 4)[:, ::2]
        assert ensure_float_array(arr).flags["C_CONTIGUOUS"]

    def test_ensure_positive(self):
        assert ensure_positive(1.5) == 1.5
        with pytest.raises(ValueError):
            ensure_positive(0.0)
        with pytest.raises(ValueError):
            ensure_positive(-1.0)

    def test_ensure_dims(self):
        ensure_dims(2, (1, 2, 3))
        with pytest.raises(ValueError):
            ensure_dims(4, (1, 2, 3))

    def test_value_range(self):
        assert value_range(np.array([1.0, 3.0, -2.0])) == 5.0

    def test_value_range_empty_raises(self):
        with pytest.raises(ValueError):
            value_range(np.array([]))

    def test_absolute_error_bound(self):
        data = np.array([0.0, 10.0])
        assert absolute_error_bound(data, 1e-2) == pytest.approx(0.1)

    def test_absolute_error_bound_constant_field(self):
        data = np.full(10, 3.0)
        assert absolute_error_bound(data, 1e-2) == pytest.approx(1e-2)


class TestParallelMap:
    def test_serial_map_preserves_order(self):
        assert parallel_map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_workers_one_is_serial(self):
        assert parallel_map(lambda x: x + 1, [1, 2], workers=1) == [2, 3]

    def test_empty_input(self):
        assert parallel_map(lambda x: x, []) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(lambda x: -x, [5], workers=8) == [-5]
